package semisort

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/stream"
)

// Failure semantics of the public API (DESIGN.md "Failure semantics" has
// the full picture):
//
//   - A panic in a user callback (key, hash, eq, less, map, combine, join)
//     is contained by the runtime on whatever goroutine it fired,
//     recorded with that goroutine's stack, and re-raised on the CALLING
//     goroutine as a *PanicError once every sibling worker has drained.
//     Pool workers survive; pooled state the call touched is discarded,
//     never re-pooled; subsequent calls on the same Runtime see a clean
//     arena.
//
//   - WithContext(ctx) makes a call cancellable at level boundaries,
//     classify chunks and broadcast rows. The ...E entry points (SortEqE,
//     HistogramE, RunE, ...) return ctx.Err() — context.Canceled or
//     context.DeadlineExceeded — after the engine has unwound and
//     discarded the call's leases. The error-less forms are thin wrappers
//     that panic on cancellation, so passing WithContext to them is
//     possible but pointless; use the E forms with contexts.
//
//   - Runtime.SetInflightLimit(n) adds admission control: every public op
//     and pipeline stage acquires a slot before touching the pool, waiting
//     context-aware, so a multi-tenant service gets backpressure instead
//     of unbounded pile-up.

// PanicError is the typed panic value a call re-raises on its caller after
// a user callback panicked on any worker goroutine: Value holds the
// original panic value and Stack the panicking goroutine's stack. Recover
// it at a service boundary to fail one request instead of the process —
// the runtime and its pools remain fully usable.
type PanicError = parallel.PanicError

// ErrPipelineConsumed reports reuse of a consumed pipeline. It is the
// errors.Is target of the *PipelineConsumedError panic value raised when a
// stage or terminal is invoked after the pipeline ended.
var ErrPipelineConsumed = errors.New("semisort: pipeline already consumed (pipelines are single-use)")

// errPipelineFaulted is the fault a pipeline carries after a user-callback
// panic killed one of its stages: the *PanicError already unwound through
// the stage call, so a caller who recovered it and then reaches the
// terminal gets this marker instead of half-computed results.
var errPipelineFaulted = errors.New("semisort: pipeline aborted by a callback panic in an earlier stage")

// PipelineConsumedError is the panic value raised when a stage or terminal
// is invoked on a pipeline that a terminal already ended (pipelines are
// single-use; see Query). Op names the offending call. It wraps
// ErrPipelineConsumed for errors.Is matching.
type PipelineConsumedError struct {
	Op string // the stage or terminal invoked after consumption, e.g. "Run"
}

func (e *PipelineConsumedError) Error() string {
	return ErrPipelineConsumed.Error() + ": " + e.Op + " called on a consumed pipeline"
}

// Unwrap makes errors.Is(e, ErrPipelineConsumed) hold.
func (e *PipelineConsumedError) Unwrap() error { return ErrPipelineConsumed }

// Streaming sentinels, following the ErrPipelineConsumed pattern: the
// canonical values live in internal/stream (the batcher delivers them on
// result channels); these re-exports are the errors.Is targets.
var (
	// ErrQueueFull is delivered by a shedding stream (WithShedding) when
	// the bounded submit queue is full: the record was dropped at the
	// door, no flush ever saw it. Blocking streams (the default) apply
	// backpressure instead and never produce it.
	ErrQueueFull = stream.ErrQueueFull

	// ErrStreamClosed is delivered for records submitted after a stream's
	// Close began. Records enqueued before Close are drained and flushed,
	// never rejected with it.
	ErrStreamClosed = stream.ErrStreamClosed
)

// asStreamFault converts a panic recovered on a streaming staging path
// (outside the engine's own call guard) into the same typed errors the
// guard produces: the bare context error for a cancellation unwind, a
// *PanicError for everything else.
func asStreamFault(r any) error {
	if cause := parallel.CancelCause(r); cause != nil {
		return cause
	}
	return parallel.AsPanicError(r)
}

// WithContext threads ctx through the call: the engine checks it at every
// recursion-level boundary, at every classify chunk, and between broadcast
// rows of a join, so cancellation latency is one chunk of one sweep — not
// one call. Use the error-returning entry points (SortEqE, HistogramE,
// JoinEqE, RunE, ...) with it; they return ctx.Err() once the call has
// unwound and its leases are discarded. The error-less forms panic the
// cancellation instead (they cannot return it), so WithContext only makes
// sense together with an E form.
func WithContext(ctx context.Context) Option {
	return func(c *core.Config) { c.Ctx = ctx }
}

// enterCall is the root guard every public op and pipeline stage runs
// under. It admits the call (context-aware, against the runtime's
// in-flight limit), fails fast on an already-fired context, and installs a
// pooled lease ledger into cfg. The returned done must be deferred with
// the caller's named error: on a clean return it settles the ledger
// (stragglers leak to the GC, never double-pool) and releases admission;
// on cancellation it converts the engine's cancel panic into ctx.Err();
// on any other panic it aborts the ledger — discarding every tracked
// lease — and re-raises as *PanicError.
func enterCall(cfg *core.Config) (done func(errp *error), err error) {
	rt := parallel.Or(cfg.Runtime)
	slot, err := rt.Acquire(cfg.Ctx)
	if err != nil {
		return nil, err
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			slot.Release()
			return nil, err
		}
	}
	lg := parallel.GetLedger(rt.Scratch())
	cfg.Ledger = lg
	return func(errp *error) {
		r := recover()
		if r == nil {
			lg.Settle(rt.Scratch())
			slot.Release()
			return
		}
		// Faulted: discard every tracked lease and retire the ledger (an
		// aborted ledger is never re-pooled). Admission is released either
		// way — the call is over: the slot drains the exact channel it was
		// acquired on, so a concurrent SetInflightLimit swap cannot strand
		// waiters on the old semaphore.
		lg.Abort()
		slot.Release()
		// Fault metrics are counted here — the public API boundary, once per
		// faulted call after every sibling worker drained — not per job or
		// per chunk, so nested jobs and multi-worker aborts never inflate
		// them (see RuntimeMetrics).
		if cause := parallel.CancelCause(r); cause != nil {
			rt.CountCancellation()
			*errp = cause
			return
		}
		rt.CountContainedPanic()
		panic(parallel.AsPanicError(r))
	}, nil
}

// mustCall backs the error-less wrappers: run the E form, panic on error
// (only reachable when the caller combined WithContext with an error-less
// form and the context fired).
func mustCall(err error) {
	if err != nil {
		panic(err)
	}
}
