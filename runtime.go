package semisort

import (
	"repro/internal/core"
	"repro/internal/parallel"
)

// Runtime is a persistent parallel runtime: a fixed pool of long-lived
// worker goroutines plus a buffer arena that recycles every transient
// allocation of the algorithms (the O(n) auxiliary array, counting
// matrices, cached bucket ids, sample tables, base-case hash tables).
//
// By default every call runs on a shared process-wide runtime, so repeated
// SortEq/Histogram/CollectReduce calls are already allocation-free in
// steady state. A service that wants an explicitly sized pool — or separate
// pools for separate tenants — creates its own with NewRuntime and passes
// it to each call via WithRuntime. Runtimes that do not live for the life
// of the process (per-tenant pools) must be shut down with Close once their
// last call has returned, or their parked pool goroutines leak; a closed
// runtime stays usable but runs calls on the calling goroutine only.
type Runtime = parallel.Runtime

// NewRuntime creates a runtime with the given target parallelism (the
// calling goroutine plus workers-1 pool goroutines); workers <= 0 selects
// GOMAXPROCS. The pool goroutines live until Close: create one runtime per
// service or tenant, not one per call, and Close it when that scope goes
// away. The shared DefaultRuntime is process-wide and never closed.
func NewRuntime(workers int) *Runtime { return parallel.NewRuntime(workers) }

// DefaultRuntime returns the shared process-wide runtime used when no
// WithRuntime option is given.
func DefaultRuntime() *Runtime { return parallel.Default() }

// WithRuntime runs the call on rt instead of the shared default runtime,
// so the call uses rt's workers and recycled buffers.
func WithRuntime(rt *Runtime) Option {
	return func(c *core.Config) { c.Runtime = rt }
}
