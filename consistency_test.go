package semisort_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	semisort "repro"
	"repro/internal/dist"
	"repro/internal/parallel"
)

// The three primitives are different views of the same grouping; this file
// checks they agree with each other on random inputs:
//
//	len(GroupsEq(a))          == len(Histogram(a))
//	group sizes               == histogram counts
//	sum over CollectReduce(+) == histogram count per key (map = 1)

func TestPrimitivesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		n := 10000 + rng.Intn(40000)
		distinct := 1 + rng.Intn(300)
		a := make([]uint64, n)
		for i := range a {
			a[i] = uint64(rng.Intn(distinct))
		}
		ident := func(x uint64) uint64 { return x }
		eq := func(x, y uint64) bool { return x == y }

		hist := semisort.Histogram(a, ident, semisort.Hash64, eq)
		counts := map[uint64]int64{}
		for _, kc := range hist {
			counts[kc.Key] = kc.Count
		}

		ones := semisort.CollectReduce(a, ident, semisort.Hash64, eq,
			func(uint64) int64 { return 1 },
			func(x, y int64) int64 { return x + y }, 0)
		if len(ones) != len(hist) {
			t.Fatalf("trial %d: collect-reduce found %d keys, histogram %d", trial, len(ones), len(hist))
		}
		for _, kv := range ones {
			if counts[kv.Key] != kv.Value {
				t.Fatalf("trial %d: key %d collect-reduce %d vs histogram %d", trial, kv.Key, kv.Value, counts[kv.Key])
			}
		}

		b := append([]uint64(nil), a...)
		groups := semisort.GroupsEq(b, ident, semisort.Hash64, eq)
		if len(groups) != len(hist) {
			t.Fatalf("trial %d: %d groups vs %d histogram keys", trial, len(groups), len(hist))
		}
		for _, g := range groups {
			k := b[g.Lo]
			if int64(g.Hi-g.Lo) != counts[k] {
				t.Fatalf("trial %d: key %d group size %d vs count %d", trial, k, g.Hi-g.Lo, counts[k])
			}
		}
	}
}

// TestBufferedScatterConsistency: with the software write buffers forced
// on, a fixed seed must still produce byte-identical output at every
// GOMAXPROCS level, and identical to the unbuffered scatter's output — the
// staging lanes change only the order of stores, never a destination.
func TestBufferedScatterConsistency(t *testing.T) {
	n := 1 << 18 // above the serial cutoff, so the parallel scatter runs
	rng := rand.New(rand.NewSource(99))
	in := make([]semisort.Pair[uint64, uint64], n)
	for i := range in {
		in[i] = semisort.Pair[uint64, uint64]{Key: uint64(rng.Intn(1 << 12)), Value: uint64(i)}
	}
	run := func(workers int, buffered bool) []semisort.Pair[uint64, uint64] {
		defer parallel.SetWorkers(parallel.SetWorkers(workers))
		defer dist.SetScatterBuffering(dist.SetScatterBuffering(buffered))
		out := append([]semisort.Pair[uint64, uint64](nil), in...)
		semisort.SortPairsEq(out, semisort.Hash64, semisort.WithSeed(5))
		return out
	}
	ref := run(1, false)
	for _, workers := range []int{1, 4, parallel.Workers()} {
		for _, buffered := range []bool{false, true} {
			if got := run(workers, buffered); !reflect.DeepEqual(got, ref) {
				t.Fatalf("output differs at workers=%d buffered=%v", workers, buffered)
			}
		}
	}
}

// TestStableAndInPlaceAgreeOnGroupSizes: both semisort variants must
// induce identical key->multiplicity maps.
func TestStableAndInPlaceAgreeOnGroupSizes(t *testing.T) {
	f := func(raw []uint16) bool {
		a := make([]uint64, len(raw))
		for i, v := range raw {
			a[i] = uint64(v % 128)
		}
		ident := func(x uint64) uint64 { return x }
		eq := func(x, y uint64) bool { return x == y }
		b := append([]uint64(nil), a...)
		c := append([]uint64(nil), a...)
		semisort.SortEq(b, ident, semisort.Hash64, eq)
		semisort.SortEqInPlace(c, ident, semisort.Hash64, eq)
		sizes := func(x []uint64) map[uint64]int {
			m := map[uint64]int{}
			for _, k := range x {
				m[k]++
			}
			return m
		}
		sb, sc := sizes(b), sizes(c)
		if len(sb) != len(sc) {
			return false
		}
		for k, v := range sb {
			if sc[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
