package semisort_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	semisort "repro"
)

// The three primitives are different views of the same grouping; this file
// checks they agree with each other on random inputs:
//
//	len(GroupsEq(a))          == len(Histogram(a))
//	group sizes               == histogram counts
//	sum over CollectReduce(+) == histogram count per key (map = 1)

func TestPrimitivesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 5; trial++ {
		n := 10000 + rng.Intn(40000)
		distinct := 1 + rng.Intn(300)
		a := make([]uint64, n)
		for i := range a {
			a[i] = uint64(rng.Intn(distinct))
		}
		ident := func(x uint64) uint64 { return x }
		eq := func(x, y uint64) bool { return x == y }

		hist := semisort.Histogram(a, ident, semisort.Hash64, eq)
		counts := map[uint64]int64{}
		for _, kc := range hist {
			counts[kc.Key] = kc.Count
		}

		ones := semisort.CollectReduce(a, ident, semisort.Hash64, eq,
			func(uint64) int64 { return 1 },
			func(x, y int64) int64 { return x + y }, 0)
		if len(ones) != len(hist) {
			t.Fatalf("trial %d: collect-reduce found %d keys, histogram %d", trial, len(ones), len(hist))
		}
		for _, kv := range ones {
			if counts[kv.Key] != kv.Value {
				t.Fatalf("trial %d: key %d collect-reduce %d vs histogram %d", trial, kv.Key, kv.Value, counts[kv.Key])
			}
		}

		b := append([]uint64(nil), a...)
		groups := semisort.GroupsEq(b, ident, semisort.Hash64, eq)
		if len(groups) != len(hist) {
			t.Fatalf("trial %d: %d groups vs %d histogram keys", trial, len(groups), len(hist))
		}
		for _, g := range groups {
			k := b[g.Lo]
			if int64(g.Hi-g.Lo) != counts[k] {
				t.Fatalf("trial %d: key %d group size %d vs count %d", trial, k, g.Hi-g.Lo, counts[k])
			}
		}
	}
}

// TestStableAndInPlaceAgreeOnGroupSizes: both semisort variants must
// induce identical key->multiplicity maps.
func TestStableAndInPlaceAgreeOnGroupSizes(t *testing.T) {
	f := func(raw []uint16) bool {
		a := make([]uint64, len(raw))
		for i, v := range raw {
			a[i] = uint64(v % 128)
		}
		ident := func(x uint64) uint64 { return x }
		eq := func(x, y uint64) bool { return x == y }
		b := append([]uint64(nil), a...)
		c := append([]uint64(nil), a...)
		semisort.SortEq(b, ident, semisort.Hash64, eq)
		semisort.SortEqInPlace(c, ident, semisort.Hash64, eq)
		sizes := func(x []uint64) map[uint64]int {
			m := map[uint64]int{}
			for _, k := range x {
				m[k]++
			}
			return m
		}
		sb, sc := sizes(b), sizes(c)
		if len(sb) != len(sc) {
			return false
		}
		for k, v := range sb {
			if sc[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
