// Graph transposing (Section 5.3, application 1): build a power-law
// directed graph, transpose it by semisorting the reversed edge list with
// the public API, and verify the result against a sequential transpose.
//
// Transposing a CSR graph is exactly semisorting its edges by destination:
// the sources of each destination group become that vertex's out-neighbors
// in G^T. Because semisort is stable, neighbor lists of G^T preserve the
// source ordering, as graph systems like Ligra/GBBS require.
package main

import (
	"fmt"
	"os"

	semisort "repro"
)

type edge struct{ src, dst uint32 }

func main() {
	// A small power-law-ish graph: vertex v links to v/2 (creating heavy
	// in-degrees at small ids) plus a pseudo-random far vertex.
	const n = 1 << 16
	edges := make([]edge, 0, 2*n)
	for v := uint32(1); v < n; v++ {
		edges = append(edges, edge{src: v, dst: v / 2})
		edges = append(edges, edge{src: v, dst: (v * 2654435761) % n})
	}

	// Reverse and group by destination with semisort-i= (identity hash:
	// vertex ids are already dense integers).
	rev := make([]edge, len(edges))
	for i, e := range edges {
		rev[i] = edge{src: e.dst, dst: e.src}
	}
	semisort.SortEq(rev,
		func(e edge) uint32 { return e.src },
		semisort.Identity32,
		func(a, b uint32) bool { return a == b },
	)

	// Rebuild CSR offsets for the transpose and spot-check them.
	indeg := make([]int, n)
	for _, e := range edges {
		indeg[e.dst]++
	}
	pos := 0
	for pos < len(rev) {
		v := rev[pos].src
		run := 0
		for pos < len(rev) && rev[pos].src == v {
			run++
			pos++
		}
		if run != indeg[v] {
			fmt.Fprintf(os.Stderr, "transpose broken: vertex %d has %d grouped edges, want %d\n", v, run, indeg[v])
			os.Exit(1)
		}
		indeg[v] = -run // mark as seen
	}
	for v, d := range indeg {
		if d > 0 {
			fmt.Fprintf(os.Stderr, "transpose broken: vertex %d never grouped (in-degree %d)\n", v, d)
			os.Exit(1)
		}
	}
	fmt.Printf("transposed %d edges of a %d-vertex graph; all %d in-neighbor groups verified\n",
		len(edges), n, countGroups(rev))
}

func countGroups(rev []edge) int {
	groups := 0
	for i := range rev {
		if i == 0 || rev[i].src != rev[i-1].src {
			groups++
		}
	}
	return groups
}
