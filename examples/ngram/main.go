// N-gram grouping (Section 5.3, application 2): tokenize a text, extract
// 2-grams (first word = key, following word = value), semisort them with
// string keys hashed on the fly, and print next-word suggestions — the
// text-recommendation use case the paper describes.
package main

import (
	"fmt"
	"strings"

	semisort "repro"
)

type bigram struct {
	Key   string // context word
	Next  string // following word
	Index int    // position in the text (demonstrates stability)
}

const text = `
the quick brown fox jumps over the lazy dog
the quick brown fox runs past the sleepy cat
the lazy dog sleeps while the quick cat watches
a quick decision beats a slow perfect answer
`

func main() {
	words := strings.Fields(strings.ToLower(text))
	grams := make([]bigram, 0, len(words)-1)
	for i := 0; i+1 < len(words); i++ {
		grams = append(grams, bigram{Key: words[i], Next: words[i+1], Index: i})
	}

	// semisort= on string keys: only hashing and equality needed, no
	// ordering of the vocabulary required.
	semisort.SortEq(grams,
		func(g bigram) string { return g.Key },
		semisort.HashString,
		func(a, b string) bool { return a == b },
	)

	fmt.Println("next-word suggestions (grouped contexts, corpus order preserved):")
	for i := 0; i < len(grams); {
		j := i
		var nexts []string
		for j < len(grams) && grams[j].Key == grams[i].Key {
			nexts = append(nexts, grams[j].Next)
			j++
		}
		if len(nexts) > 1 {
			fmt.Printf("  %-8s -> %s\n", grams[i].Key, strings.Join(nexts, ", "))
		}
		i = j
	}

	// Histogram over contexts: which words start the most bigrams?
	counts := semisort.Histogram(grams,
		func(g bigram) string { return g.Key },
		semisort.HashString,
		func(a, b string) bool { return a == b },
	)
	top, topN := "", int64(0)
	for _, kc := range counts {
		if kc.Count > topN {
			top, topN = kc.Key, kc.Count
		}
	}
	fmt.Printf("\nmost frequent context: %q (%d bigrams, %d distinct contexts)\n", top, topN, len(counts))
}
