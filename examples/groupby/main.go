// Group-by at scale: the database aggregation workload the paper's
// introduction motivates (groupBy/aggregation, reduceByKey). This example
// aggregates 5 million synthetic sales records per store with three
// strategies and compares wall-clock time and results:
//
//  1. a single-threaded Go map (the idiomatic baseline),
//  2. a sharded-map aggregation (the common hand-rolled parallel fix),
//  3. the paper's collect-reduce.
//
// On skewed key distributions (a few hot stores), collect-reduce wins
// because hot keys are reduced per subarray without contention or movement.
package main

import (
	"fmt"
	"sync"
	"time"

	semisort "repro"
	"repro/internal/dist"
	"repro/internal/parallel"
)

type saleRec struct {
	Store  uint64
	Amount uint64
}

func main() {
	const n = 5_000_000
	stores := dist.Keys64(n, dist.Spec{Kind: dist.Zipfian, Param: 1.1}, 99)
	sales := make([]saleRec, n)
	for i, s := range stores {
		sales[i] = saleRec{Store: s, Amount: (s*31 + uint64(i)) % 1000}
	}

	// 1. Single-threaded map.
	start := time.Now()
	mapTotals := make(map[uint64]uint64, 1024)
	for _, s := range sales {
		mapTotals[s.Store] += s.Amount
	}
	tMap := time.Since(start)

	// 2. Sharded maps with a final merge.
	start = time.Now()
	nShards := parallel.Workers()
	shards := make([]map[uint64]uint64, nShards)
	var wg sync.WaitGroup
	for sh := 0; sh < nShards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			lo, hi := parallel.BlockRange(n, nShards, sh)
			m := make(map[uint64]uint64, 1024)
			for _, s := range sales[lo:hi] {
				m[s.Store] += s.Amount
			}
			shards[sh] = m
		}(sh)
	}
	wg.Wait()
	shardTotals := make(map[uint64]uint64, 1024)
	for _, m := range shards {
		for k, v := range m {
			shardTotals[k] += v
		}
	}
	tShard := time.Since(start)

	// 3. Collect-reduce.
	start = time.Now()
	crTotals := semisort.CollectReduce(sales,
		func(s saleRec) uint64 { return s.Store },
		semisort.Hash64,
		func(a, b uint64) bool { return a == b },
		func(s saleRec) uint64 { return s.Amount },
		func(a, b uint64) uint64 { return a + b },
		0,
	)
	tCR := time.Since(start)

	// Cross-check all three.
	if len(crTotals) != len(mapTotals) || len(shardTotals) != len(mapTotals) {
		panic("strategies disagree on the number of stores")
	}
	for _, kv := range crTotals {
		if mapTotals[kv.Key] != kv.Value || shardTotals[kv.Key] != kv.Value {
			panic(fmt.Sprintf("store %d: totals disagree", kv.Key))
		}
	}

	fmt.Printf("aggregated %d sales over %d stores (%d threads):\n",
		n, len(crTotals), parallel.Workers())
	fmt.Printf("  %-28s %8.1f ms\n", "single-threaded map:", tMap.Seconds()*1e3)
	fmt.Printf("  %-28s %8.1f ms\n", "sharded maps + merge:", tShard.Seconds()*1e3)
	fmt.Printf("  %-28s %8.1f ms\n", "collect-reduce (this paper):", tCR.Seconds()*1e3)
	fmt.Printf("speedup over single-threaded map: %.1fx\n",
		tMap.Seconds()/tCR.Seconds())
}
