// Service: fault containment and observability in a long-lived analytics
// service. One shared runtime serves every request; a slow query is
// cancelled by its deadline mid-flight and a buggy request's callback panic
// is contained — and in both cases the very next request runs on the same
// runtime, full speed, with byte-identical results to a fresh process. The
// whole time, the service's debug endpoint (/debug/semisort, next to
// net/http/pprof) exposes the runtime's admission and fault gauges and the
// ingest stream's queue metrics, so the operator watching the dashboard
// sees the cancellation and the containment as counter ticks, not outages.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	semisort "repro"
)

type event struct {
	User uint64
	Item uint64
}

func user(e event) uint64      { return e.User }
func eqU64(a, b uint64) bool   { return a == b }
func slowHash(x uint64) uint64 { time.Sleep(10 * time.Microsecond); return semisort.Hash64(x) }

func main() {
	// One runtime for the whole service: shared workers, shared recycled
	// buffers, and an in-flight cap so a burst of requests queues at the
	// door (context-aware) instead of piling onto the pool.
	rt := semisort.NewRuntime(0)
	defer rt.Close()
	rt.SetInflightLimit(4)

	// An ingest stream dedups events as they arrive; its batcher gauges
	// (queue depth, per-reason flush counts, commit latency) join the
	// debug page below.
	ingest := semisort.NewDedupStream[event, uint64](user, semisort.Hash64, eqU64,
		semisort.WithBatchSize(4096), semisort.WithStreamOptions(semisort.WithRuntime(rt)))

	// The debug surface: Publish registers the runtime under expvar and
	// returns the JSON registry; Add hangs the stream's gauges off the same
	// page. Mounted next to net/http/pprof — the engine labels its hot
	// phases via pprof.Do (semisort.SetProfileLabels), so a CPU profile
	// scraped from this very mux splits by op and recursion level.
	reg := semisort.Publish(rt)
	reg.Add("ingest", func() any { return ingest.Metrics() })
	mux := http.NewServeMux()
	mux.Handle("/debug/semisort", reg)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("listen:", err)
		return
	}
	go http.Serve(ln, mux)
	fmt.Printf("debug surface at http://%s/debug/semisort\n", ln.Addr())

	events := make([]event, 200_000)
	for i := range events {
		events[i] = event{User: uint64(i) % 1000, Item: uint64(i)}
	}

	// Ingest a slice of the feed through the stream, then read its gauges
	// the way the debug page renders them.
	for _, e := range events[:16384] {
		ingest.Submit(e)
	}
	for ingest.Metrics().FlushBySize < 4 { // all four size-triggered batches
		time.Sleep(time.Millisecond)
	}
	sm := ingest.Metrics()
	fmt.Printf("ingest: %d submitted, %d size-triggered flushes, queue high-water %d\n",
		sm.Submitted, sm.FlushBySize, sm.QueueHighWater)

	// Request 1: a query too slow for its deadline. While it runs, the
	// admission gauges show it in flight; the engine checks the context at
	// every level boundary and classify chunk, so the call returns
	// context.DeadlineExceeded promptly — its pooled buffers discarded,
	// never half-mutated back into the arena — and the cancellation lands
	// on the Cancellations counter with Inflight back at zero.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	inflight := make(chan int64, 1)
	go func() { // the operator's view, mid-query
		for {
			if m := rt.Metrics(); m.Inflight > 0 {
				inflight <- m.Inflight
				return
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	top, err := semisort.TopKE(events, 3, user, slowHash, eqU64,
		semisort.WithRuntime(rt), semisort.WithContext(ctx))
	cancel()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		m := rt.Metrics()
		fmt.Printf("slow query: cancelled by deadline (inflight was %d mid-query; now cancellations=%d inflight=%d)\n",
			<-inflight, m.Cancellations, m.Inflight)
	case err != nil:
		fmt.Println("slow query:", err)
	default:
		fmt.Println("slow query finished anyway:", top)
	}

	// Request 2: a buggy callback. The panic is contained on whatever
	// worker it fired on and re-raised here as a typed *PanicError — the
	// service recovers it, fails this one request, and keeps serving. The
	// containment is one tick on PanicsContained.
	func() {
		defer func() {
			var pe *semisort.PanicError
			if r := recover(); r != nil {
				if pe, _ = r.(*semisort.PanicError); pe == nil {
					panic(r)
				}
				fmt.Printf("buggy query: contained panic %v (panics_contained=%d)\n",
					pe.Value, rt.Metrics().PanicsContained)
			}
		}()
		n := 0
		buggy := func(x uint64) uint64 {
			if n++; n == 1000 {
				panic("bug in request handler")
			}
			return semisort.Hash64(x)
		}
		semisort.Histogram(events, user, buggy, eqU64, semisort.WithRuntime(rt))
	}()

	// Request 3: the same runtime keeps serving — full parallelism, clean
	// pools — right after both failures.
	top, err = semisort.TopKE(events, 3, user, semisort.Hash64, eqU64,
		semisort.WithRuntime(rt), semisort.WithContext(context.Background()))
	if err != nil {
		fmt.Println("healthy query:", err)
		return
	}
	fmt.Println("healthy query on the same runtime:")
	for _, kc := range top {
		fmt.Printf("  user %4d: %d events\n", kc.Key, kc.Count)
	}

	// Finally, what the dashboard scrapes: the debug page itself.
	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/semisort")
	if err != nil {
		fmt.Println("debug fetch:", err)
		return
	}
	defer resp.Body.Close()
	var page struct {
		Runtime semisort.RuntimeMetrics `json:"runtime"`
		Ingest  semisort.StreamMetrics  `json:"ingest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		fmt.Println("debug decode:", err)
		return
	}
	if err := ingest.Close(); err != nil {
		fmt.Println("ingest close:", err)
	}
	fmt.Printf("debug page: jobs=%d cancellations=%d panics_contained=%d ingest_flushes=%d\n",
		page.Runtime.Jobs, page.Runtime.Cancellations, page.Runtime.PanicsContained,
		page.Ingest.Flushes)
}
