// Service: fault containment in a long-lived analytics service. One shared
// runtime serves every request; a slow query is cancelled by its deadline
// mid-flight and a buggy request's callback panic is contained — and in
// both cases the very next request runs on the same runtime, full speed,
// with byte-identical results to a fresh process. This is the failure
// model the error-returning entry points (SortEqE, HistogramE, the
// pipeline's RunE family) and WithContext exist for.
package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	semisort "repro"
)

type event struct {
	User uint64
	Item uint64
}

func user(e event) uint64      { return e.User }
func eqU64(a, b uint64) bool   { return a == b }
func slowHash(x uint64) uint64 { time.Sleep(10 * time.Microsecond); return semisort.Hash64(x) }

func main() {
	// One runtime for the whole service: shared workers, shared recycled
	// buffers, and an in-flight cap so a burst of requests queues at the
	// door (context-aware) instead of piling onto the pool.
	rt := semisort.NewRuntime(0)
	defer rt.Close()
	rt.SetInflightLimit(4)

	events := make([]event, 200_000)
	for i := range events {
		events[i] = event{User: uint64(i) % 1000, Item: uint64(i)}
	}

	// Request 1: a query too slow for its deadline. The engine checks the
	// context at every level boundary and classify chunk, so the call
	// returns context.DeadlineExceeded promptly — its pooled buffers
	// discarded, never half-mutated back into the arena.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	top, err := semisort.TopKE(events, 3, user, slowHash, eqU64,
		semisort.WithRuntime(rt), semisort.WithContext(ctx))
	cancel()
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Println("slow query: cancelled by deadline, as intended")
	case err != nil:
		fmt.Println("slow query:", err)
	default:
		fmt.Println("slow query finished anyway:", top)
	}

	// Request 2: a buggy callback. The panic is contained on whatever
	// worker it fired on and re-raised here as a typed *PanicError — the
	// service recovers it, fails this one request, and keeps serving.
	func() {
		defer func() {
			var pe *semisort.PanicError
			if r := recover(); r != nil {
				if pe, _ = r.(*semisort.PanicError); pe == nil {
					panic(r)
				}
				fmt.Printf("buggy query: contained panic %v (stack captured: %d bytes)\n",
					pe.Value, len(pe.Stack))
			}
		}()
		n := 0
		buggy := func(x uint64) uint64 {
			if n++; n == 1000 {
				panic("bug in request handler")
			}
			return semisort.Hash64(x)
		}
		semisort.Histogram(events, user, buggy, eqU64, semisort.WithRuntime(rt))
	}()

	// Request 3: the same runtime keeps serving — full parallelism, clean
	// pools — right after both failures.
	top, err = semisort.TopKE(events, 3, user, semisort.Hash64, eqU64,
		semisort.WithRuntime(rt), semisort.WithContext(context.Background()))
	if err != nil {
		fmt.Println("healthy query:", err)
		return
	}
	fmt.Println("healthy query on the same runtime:")
	for _, kc := range top {
		fmt.Printf("  user %4d: %d events\n", kc.Key, kc.Count)
	}
}
