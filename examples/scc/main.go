// Strongly connected components: the paper's motivating consumer of graph
// transposing (Section 5.3). SCC algorithms run reachability searches both
// forwards and backwards; the backward searches run forwards on G^T, and
// G^T is produced by semisorting the reversed edge list.
//
// This example builds a directed graph with planted cycles, transposes it
// with semisort-i=, runs the forward-backward SCC decomposition, and
// reports the component-size distribution via the histogram primitive.
package main

import (
	"fmt"

	semisort "repro"
	"repro/internal/graph"
)

func main() {
	// A graph with three planted rings (sizes 100, 50, 10) connected by
	// one-way bridges, plus pseudo-random DAG edges between rings.
	const n = 4000
	var edges []graph.Edge
	addRing := func(lo, size int) {
		for i := 0; i < size; i++ {
			edges = append(edges, graph.Edge{
				Src: uint32(lo + i),
				Dst: uint32(lo + (i+1)%size),
			})
		}
	}
	addRing(0, 100)
	addRing(100, 50)
	addRing(150, 10)
	edges = append(edges,
		graph.Edge{Src: 5, Dst: 120},   // ring 1 -> ring 2 (one way)
		graph.Edge{Src: 130, Dst: 155}, // ring 2 -> ring 3 (one way)
	)
	for v := uint32(160); v < n; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: (v * 2654435761) % n})
	}

	g := graph.FromEdges(n, edges)
	gt := graph.Transpose(g, graph.SemisortIEq) // semisort does the work here
	comp := graph.SCC(g, gt)

	// Histogram of component sizes, via the public collect primitives:
	// first count vertices per component, then count components per size.
	perComp := semisort.Histogram(comp,
		func(c int32) int32 { return c },
		func(c int32) uint64 { return semisort.Hash64(uint64(uint32(c))) },
		func(a, b int32) bool { return a == b },
	)
	sizes := make([]int64, 0, len(perComp))
	for _, kc := range perComp {
		sizes = append(sizes, kc.Count)
	}
	bySize := semisort.Histogram(sizes,
		func(s int64) int64 { return s },
		func(s int64) uint64 { return semisort.Hash64(uint64(s)) },
		func(a, b int64) bool { return a == b },
	)

	fmt.Printf("%d vertices, %d edges, %d strongly connected components\n",
		g.N, g.M(), len(perComp))
	fmt.Println("component-size distribution:")
	for _, kc := range bySize {
		if kc.Key > 1 {
			note := ""
			if kc.Key == 100 || kc.Key == 50 || kc.Key == 10 {
				note = "  (planted ring)"
			}
			fmt.Printf("  size %4d x %d%s\n", kc.Key, kc.Count, note)
		}
	}
	var singletons int64
	for _, kc := range bySize {
		if kc.Key == 1 {
			singletons = kc.Count
		}
	}
	fmt.Printf("  size    1 x %d\n", singletons)
}
