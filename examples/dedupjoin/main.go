// Relational bulk operators at scale: the database workloads the paper's
// introduction motivates (deduplication, joins, distinct counting). This
// example runs an event-log pipeline over synthetic click events with two
// strategies — idiomatic single-threaded Go maps and the semisort-driver
// relational ops — and compares wall-clock time and results:
//
//  1. deduplicate the event stream by event id (retries produce duplicates;
//     the FIRST occurrence must win so the original timestamp survives),
//  2. join the deduplicated events against a user table (equi-join on the
//     user id) to enrich each event,
//  3. count distinct users seen and list the top-5 busiest users.
//
// The relational ops run on the same distribution pipeline as the sorter:
// duplicates and frequent keys are consumed where they stand (never
// scattered), both join sides are partitioned against one shared sample, and
// every call is deterministic for a fixed seed at any parallelism.
package main

import (
	"fmt"
	"time"

	semisort "repro"
	"repro/internal/dist"
)

type event struct {
	ID   uint64 // event id: duplicated by retries
	User uint64 // user id: zipfian (a few power users)
	TS   uint64 // ingest timestamp: first occurrence carries the true one
}

type user struct {
	ID   uint64
	Name uint64 // stand-in for profile payload
}

type enriched struct {
	Event event
	Name  uint64
}

func main() {
	const n = 4_000_000
	const nUsers = 200_000

	// Build a click stream where ~1/4 of the events are retry duplicates
	// (same event id, later timestamp) and user activity is zipfian.
	ids := dist.Keys64(n, dist.Spec{Kind: dist.Uniform, Param: float64(3 * n / 4)}, 7)
	users := dist.Keys64(n, dist.Spec{Kind: dist.Zipfian, Param: 1.1}, 8)
	events := make([]event, n)
	for i := range events {
		events[i] = event{ID: ids[i], User: users[i] % nUsers, TS: uint64(i)}
	}
	profiles := make([]user, nUsers)
	for i := range profiles {
		profiles[i] = user{ID: uint64(i), Name: uint64(i) * 31}
	}
	eventID := func(e event) uint64 { return e.ID }
	eventUser := func(e event) uint64 { return e.User }
	userID := func(u user) uint64 { return u.ID }
	eqU64 := func(a, b uint64) bool { return a == b }

	// Map pipeline: dedup keep-first, build user index, probe, count, rank.
	start := time.Now()
	firstSeen := make(map[uint64]int, 1024)
	mapDeduped := make([]event, 0, 1024)
	for _, e := range events {
		if _, ok := firstSeen[e.ID]; !ok {
			firstSeen[e.ID] = len(mapDeduped)
			mapDeduped = append(mapDeduped, e)
		}
	}
	userIdx := make(map[uint64]user, nUsers)
	for _, u := range profiles {
		userIdx[u.ID] = u
	}
	mapEnriched := make([]enriched, 0, len(mapDeduped))
	mapActivity := make(map[uint64]int64, 1024)
	for _, e := range mapDeduped {
		if u, ok := userIdx[e.User]; ok {
			mapEnriched = append(mapEnriched, enriched{Event: e, Name: u.Name})
			mapActivity[e.User]++
		}
	}
	tMap := time.Since(start)

	// Relational pipeline on the shared semisort runtime.
	start = time.Now()
	deduped := semisort.Dedup(events, eventID, semisort.Hash64, eqU64)
	rows := semisort.JoinEq(deduped, profiles, eventUser, userID, semisort.Hash64, eqU64,
		func(e event, u user) enriched { return enriched{Event: e, Name: u.Name} })
	distinctUsers := semisort.CountDistinct(rows,
		func(r enriched) uint64 { return r.Event.User }, semisort.Hash64, eqU64)
	top := semisort.TopK(rows, 5,
		func(r enriched) uint64 { return r.Event.User }, semisort.Hash64, eqU64)
	tRel := time.Since(start)

	fmt.Printf("events %d -> deduped %d -> enriched rows %d, %d distinct users\n",
		n, len(deduped), len(rows), distinctUsers)
	if len(deduped) != len(mapDeduped) || len(rows) != len(mapEnriched) ||
		int(distinctUsers) != len(mapActivity) {
		panic("relational pipeline disagrees with the map pipeline")
	}
	for _, kc := range top {
		if mapActivity[kc.Key] != kc.Count {
			panic("top-k count disagrees with the map pipeline")
		}
		fmt.Printf("  user %6d: %d enriched events\n", kc.Key, kc.Count)
	}
	fmt.Printf("map pipeline:        %8.1f ms\n", tMap.Seconds()*1e3)
	fmt.Printf("relational pipeline: %8.1f ms\n", tRel.Seconds()*1e3)
}
