// Pipeline fusion: the hash-once-per-pipeline query API. This example runs
// the same analytics twice — once as hand-composed relational ops (each op a
// standalone call that re-hashes its input from scratch) and once as a fused
// pipeline (semisort.Query: each stage hands the next its cached hash plane,
// its promoted heavy keys, and its grouped/distinct shape) — and compares
// wall-clock time and results:
//
//  1. dedup→join→top-k: reduce a click stream to one record per user (the
//     user's first click wins), equi-join those users against an impression
//     stream on the user id, rank the top-10 users by impression count.
//     Fused, the join's output rows are never materialized: the counting
//     terminal multiplies per-key match counts. (A pipeline has one key for
//     its whole chain — dedup and join here both key on the user id.)
//
//  2. skewed self-join→top-k: join two zipfian streams on their keys. The
//     join output is quadratic in the per-key multiplicities (hundreds of
//     millions of rows from 100k-record inputs); the unfused composition
//     must materialize and then re-scan them all, while the fused pipeline
//     answers from per-key counts in milliseconds.
//
// Both paths produce identical rankings; the fused one calls the user hash
// exactly once per input record.
package main

import (
	"fmt"
	"time"

	semisort "repro"
	"repro/internal/dist"
)

type click struct {
	ID   uint64 // event id: duplicated by retries
	User uint64 // user id
}

func main() {
	const n = 4_000_000

	ids := dist.Keys64(n, dist.Spec{Kind: dist.Uniform, Param: float64(3 * n / 4)}, 7)
	users := dist.Keys64(n, dist.Spec{Kind: dist.Uniform, Param: float64(n)}, 8)
	a := make([]click, n)
	for i := range a {
		a[i] = click{ID: ids[i], User: users[i]}
	}
	bUsers := dist.Keys64(n, dist.Spec{Kind: dist.Uniform, Param: float64(n)}, 9)
	b := make([]click, n)
	for i := range b {
		b[i] = click{ID: uint64(i), User: bUsers[i]}
	}
	clickID := func(c click) uint64 { return c.ID }
	clickUser := func(c click) uint64 { return c.User }
	eqU64 := func(x, y uint64) bool { return x == y }

	// Unfused: three standalone ops. Dedup hashes every record of a; JoinEq
	// re-hashes the deduped records and hashes b; TopK materializes every
	// joined row first, then hashes each one a third time to count it.
	start := time.Now()
	deduped := semisort.Dedup(a, clickUser, semisort.Hash64, eqU64)
	rows := semisort.JoinEq(deduped, b, clickUser, clickUser, semisort.Hash64, eqU64,
		func(x, y click) [2]click { return [2]click{x, y} })
	topUnfused := semisort.TopK(rows, 10,
		func(r [2]click) uint64 { return r[0].User }, semisort.Hash64, eqU64)
	tUnfused := time.Since(start)

	// Fused: one pipeline. Dedup hashes a once and emits its hash plane; the
	// join consumes it (hashing only b); TopK counts per-key match products
	// without ever materializing a joined row.
	start = time.Now()
	topFused := semisort.Query(a, clickUser, semisort.Hash64, eqU64).
		Dedup().
		JoinEq(b, clickUser).
		TopK(10)
	tFused := time.Since(start)

	// Both rankings are keyed by the user id (the fused JoinEq keys joined
	// rows by the join key); ties may order differently, so compare counts.
	if len(topFused) != len(topUnfused) {
		panic("fused and unfused top-k disagree on length")
	}
	for i := range topFused {
		if topFused[i].Count != topUnfused[i].Count {
			panic("fused and unfused top-k disagree")
		}
	}
	fmt.Printf("dedup-join-topk over %d x %d records (%d joined rows unfused):\n",
		n, n, len(rows))
	for _, kc := range topFused {
		fmt.Printf("  user %8d: %d joined rows\n", kc.Key, kc.Count)
	}
	fmt.Printf("unfused (Dedup; JoinEq; TopK): %8.1f ms\n", tUnfused.Seconds()*1e3)
	fmt.Printf("fused   (Query pipeline):      %8.1f ms\n\n", tFused.Seconds()*1e3)

	// Skewed self-join: both sides zipfian, so a handful of hot keys match
	// combinatorially. The unfused path pays for every one of those rows.
	const m = 50_000
	za := dist.Keys64(m, dist.Spec{Kind: dist.Zipfian, Param: 1.2}, 11)
	zb := dist.Keys64(m, dist.Spec{Kind: dist.Zipfian, Param: 1.2}, 12)
	sa := make([]click, m)
	sb := make([]click, m)
	for i := 0; i < m; i++ {
		sa[i] = click{ID: za[i]}
		sb[i] = click{ID: zb[i]}
	}

	start = time.Now()
	zrows := semisort.JoinEq(sa, sb, clickID, clickID, semisort.Hash64, eqU64,
		func(x, y click) [2]click { return [2]click{x, y} })
	ztopUnfused := semisort.TopK(zrows, 5,
		func(r [2]click) uint64 { return r[0].ID }, semisort.Hash64, eqU64)
	tzUnfused := time.Since(start)

	start = time.Now()
	ztopFused := semisort.Query(sa, clickID, semisort.Hash64, eqU64).
		JoinEq(sb, clickID).
		TopK(5)
	tzFused := time.Since(start)

	for i := range ztopFused {
		if ztopFused[i].Count != ztopUnfused[i].Count {
			panic("fused and unfused skewed top-k disagree")
		}
	}
	fmt.Printf("skewed self-join-topk over %d x %d records (%d joined rows unfused):\n",
		m, m, len(zrows))
	for _, kc := range ztopFused {
		fmt.Printf("  key %8d: %d joined rows\n", kc.Key, kc.Count)
	}
	fmt.Printf("unfused (JoinEq; TopK): %8.1f ms\n", tzUnfused.Seconds()*1e3)
	fmt.Printf("fused   (Query pipeline): %6.1f ms\n", tzFused.Seconds()*1e3)
}
