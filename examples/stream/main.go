// Stream: resilient streaming ingestion. Many producer goroutines submit
// events one at a time; the stream coalesces them into engine-sized
// batches, deduplicates each batch against a persistent seen-set, and
// commits state by epoch — so when a poisoned event's hash callback
// panics mid-stream, exactly that batch's records fail with a typed
// error, the cross-batch state stays equal to a replay of the committed
// batches, and the same stream keeps ingesting. Re-submitting the failed
// batch's clean records afterwards recovers them.
package main

import (
	"errors"
	"fmt"
	"sync"

	semisort "repro"
)

type event struct {
	ID     uint64
	Source int
}

const poisoned = uint64(0xBAD)

func id(e event) uint64      { return e.ID }
func eqU64(a, b uint64) bool { return a == b }

// fragileHash stands in for a callback with a data-dependent bug: it
// panics on one specific key.
func fragileHash(k uint64) uint64 {
	if k == poisoned {
		panic("corrupt record: unhashable id")
	}
	return semisort.Hash64(k)
}

func main() {
	s := semisort.NewDedupStream[event, uint64](id, fragileHash, eqU64,
		semisort.WithBatchSize(256),
		semisort.WithMaxWait(-1), // size-only flushing keeps the demo deterministic
	)

	// Phase 1: four producers ingest 4 x 1024 events concurrently, ids
	// drawn from a shared domain so producers duplicate each other. One
	// producer slips the poisoned event in.
	const perProducer = 1024
	type outcome struct {
		e  event
		ch <-chan semisort.StreamResult[semisort.DedupKept]
	}
	outcomes := make([][]outcome, 4)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				e := event{ID: uint64(p*perProducer+i) % 1500, Source: p}
				if p == 2 && i == 700 {
					e.ID = poisoned
				}
				outcomes[p] = append(outcomes[p], outcome{e, s.Submit(e)})
			}
		}(p)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		var be *semisort.BatchError
		if errors.As(err, &be) {
			fmt.Printf("one flush faulted, as intended: epoch %d, %d records\n", be.Epoch, be.Records)
		}
	}

	// Tally: every record either resolved (kept or duplicate) or carries
	// the faulted flush's typed error. The poisoned batch failed as a
	// unit; every other batch committed.
	var kept, dup int
	var failed []event
	for _, po := range outcomes {
		for _, o := range po {
			r := <-o.ch
			switch {
			case r.Err == nil && r.Out.Kept:
				kept++
			case r.Err == nil:
				dup++
			default:
				var pe *semisort.PanicError
				if !errors.As(r.Err, &pe) {
					fmt.Println("unexpected error kind:", r.Err)
					return
				}
				if o.e.ID != poisoned {
					failed = append(failed, o.e) // clean records caught in the faulted batch
				}
			}
		}
	}
	fmt.Printf("phase 1: %d kept, %d duplicates, %d clean records failed alongside the poisoned one\n",
		kept, dup, len(failed))
	fmt.Printf("distinct ids committed so far: %d\n", s.Distinct())

	// Phase 2: recovery. Because the faulted flush committed nothing, the
	// failed records can simply be resubmitted (here: a clean replay of
	// every well-formed event on a fresh stream) and the result equals a
	// run that never faulted — no record double-counted, none lost.
	s2 := semisort.NewDedupStream[event, uint64](id, semisort.Hash64, eqU64,
		semisort.WithBatchSize(256), semisort.WithMaxWait(-1))
	for _, po := range outcomes {
		for _, o := range po {
			if o.e.ID != poisoned {
				s2.Submit(o.e)
			}
		}
	}
	if err := s2.Close(); err != nil {
		fmt.Println("clean replay faulted:", err)
		return
	}
	fmt.Printf("phase 2: clean replay of all %d well-formed events: %d distinct ids\n",
		4*perProducer-1, s2.Distinct())
	if s.Distinct() <= s2.Distinct() {
		fmt.Println("committed state is a consistent prefix of the full answer: ok")
	}
}
