// Variable-length keys at scale: the web-log workload the string-keyed API
// (strkeys.go) exists for. Keys here are URLs and request ids — short
// strings with long shared prefixes — where a map pipeline pays a header
// chase plus a byte-wise compare on every probe, and the arena key plane
// moves 8-byte digests instead (each key's bytes are materialized and
// hashed exactly once per call; full comparisons only after digest
// equality). This example runs the same access-log rollup two ways —
// idiomatic single-threaded Go maps and the semisort string ops — and
// compares wall-clock time and results:
//
//  1. deduplicate the log by request id (proxy retries duplicate lines;
//     the FIRST occurrence must win so the original status survives),
//  2. semi-join the deduplicated lines against a watchlist of monitored
//     paths (string equi-join on the URL),
//  3. count distinct URLs seen and list the top-5 hottest monitored paths.
//
// Every step is deterministic for a fixed seed at any parallelism, and the
// string ops accept composite keys without per-record allocation via the
// append-style Keyed forms.
package main

import (
	"fmt"
	"time"

	semisort "repro"
	"repro/internal/dist"
)

type logLine struct {
	ReqID  string // request id: duplicated by proxy retries
	URL    string // request path: zipfian (a few hot endpoints)
	Status int    // first occurrence carries the true status
}

type pathInfo struct {
	URL   string
	Owner int // stand-in for routing/team metadata
}

type monitored struct {
	Line  logLine
	Owner int
}

func main() {
	const n = 2_000_000
	const nPaths = 4_000

	// Build an access log where ~1/4 of the lines are retry duplicates
	// (same request id, later status) and path popularity is zipfian. The
	// key populations carry the realistic shape: a shared service prefix
	// with a random tail.
	idSpec := dist.StrSpec{
		Spec:   dist.Spec{Kind: dist.Uniform, Param: float64(3 * n / 4)},
		MinLen: 8, MaxLen: 24, Prefix: 4,
	}
	ids := dist.KeysStr(n, idSpec, 7)
	hot := dist.Keys64(n, dist.Spec{Kind: dist.Zipfian, Param: 1.1}, 8)
	lines := make([]logLine, n)
	for i := range lines {
		lines[i] = logLine{
			ReqID:  ids[i],
			URL:    fmt.Sprintf("/api/v2/resource/%d", hot[i]%nPaths),
			Status: 200 + i%3,
		}
	}
	watch := make([]pathInfo, 0, nPaths/4)
	for p := 0; p < nPaths; p += 4 { // every fourth path is monitored
		watch = append(watch, pathInfo{URL: fmt.Sprintf("/api/v2/resource/%d", p), Owner: p % 17})
	}
	lineID := func(l logLine) string { return l.ReqID }
	lineURL := func(l logLine) string { return l.URL }
	pathURL := func(p pathInfo) string { return p.URL }

	// Map pipeline: dedup keep-first, index the watchlist, probe, count, rank.
	start := time.Now()
	firstSeen := make(map[string]bool, 1024)
	mapDeduped := make([]logLine, 0, 1024)
	for _, l := range lines {
		if !firstSeen[l.ReqID] {
			firstSeen[l.ReqID] = true
			mapDeduped = append(mapDeduped, l)
		}
	}
	watchIdx := make(map[string]pathInfo, len(watch))
	for _, p := range watch {
		watchIdx[p.URL] = p
	}
	mapRows := make([]monitored, 0, 1024)
	mapHits := make(map[string]int64, 1024)
	mapURLs := make(map[string]bool, 1024)
	for _, l := range mapDeduped {
		mapURLs[l.URL] = true
		if p, ok := watchIdx[l.URL]; ok {
			mapRows = append(mapRows, monitored{Line: l, Owner: p.Owner})
			mapHits[l.URL]++
		}
	}
	tMap := time.Since(start)

	// String-keyed relational pipeline on the shared semisort runtime.
	start = time.Now()
	deduped := semisort.DedupStr(lines, lineID)
	rows := semisort.JoinEqStr(deduped, watch, lineURL, pathURL,
		func(l logLine, p pathInfo) monitored { return monitored{Line: l, Owner: p.Owner} })
	distinctURLs := semisort.CountDistinctStr(deduped, lineURL)
	top := semisort.TopKStr(rows, 5, func(m monitored) string { return m.Line.URL })
	tRel := time.Since(start)

	fmt.Printf("lines %d -> deduped %d -> monitored rows %d, %d distinct URLs\n",
		n, len(deduped), len(rows), distinctURLs)
	if len(deduped) != len(mapDeduped) || len(rows) != len(mapRows) ||
		int(distinctURLs) != len(mapURLs) {
		panic("string pipeline disagrees with the map pipeline")
	}
	for _, kc := range top {
		if mapHits[kc.Key] != kc.Count {
			panic("top-k count disagrees with the map pipeline")
		}
		fmt.Printf("  %-24s %d deduplicated hits\n", kc.Key, kc.Count)
	}
	fmt.Printf("map pipeline:    %8.1f ms\n", tMap.Seconds()*1e3)
	fmt.Printf("string pipeline: %8.1f ms\n", tRel.Seconds()*1e3)
}
