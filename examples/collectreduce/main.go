// Collect-reduce at scale (Section 3.5): aggregate a skewed stream of
// (page, latency) measurements — total count, sum, and max per page — in a
// single pass each, and demonstrate that a non-commutative reduction is
// safe because the algorithm is stable.
package main

import (
	"fmt"

	semisort "repro"
	"repro/internal/dist"
)

type sample struct {
	Page    uint64
	Latency uint64
}

func main() {
	// A Zipfian page-popularity stream: a few pages receive most traffic
	// (these become the algorithm's heavy keys and are reduced without
	// ever being moved).
	const n = 2_000_000
	pages := dist.Keys64(n, dist.Spec{Kind: dist.Zipfian, Param: 1.2}, 7)
	samples := make([]sample, n)
	for i, p := range pages {
		samples[i] = sample{Page: p, Latency: 1 + (p*2654435761+uint64(i))%500}
	}

	pageKey := func(s sample) uint64 { return s.Page }
	eq := func(a, b uint64) bool { return a == b }

	counts := semisort.Histogram(samples, pageKey, semisort.Hash64, eq)

	sums := semisort.CollectReduce(samples, pageKey, semisort.Hash64, eq,
		func(s sample) uint64 { return s.Latency },
		func(a, b uint64) uint64 { return a + b }, 0)

	maxs := semisort.CollectReduce(samples, pageKey, semisort.Hash64, eq,
		func(s sample) uint64 { return s.Latency },
		func(a, b uint64) uint64 { return max(a, b) }, 0)

	fmt.Printf("%d samples over %d distinct pages\n", n, len(counts))
	sumByPage := make(map[uint64]uint64, len(sums))
	for _, kv := range sums {
		sumByPage[kv.Key] = kv.Value
	}
	maxByPage := make(map[uint64]uint64, len(maxs))
	for _, kv := range maxs {
		maxByPage[kv.Key] = kv.Value
	}
	fmt.Println("hottest pages:")
	printed := 0
	for _, kc := range counts {
		if kc.Count > n/20 { // heavy pages only
			fmt.Printf("  page %-6d hits=%-8d mean=%5.1f max=%d\n",
				kc.Key, kc.Count, float64(sumByPage[kc.Key])/float64(kc.Count), maxByPage[kc.Key])
			printed++
		}
	}
	if printed == 0 {
		fmt.Println("  (no page above the 5% traffic threshold)")
	}

	// Non-commutative reduction: first-latency-seen per page. With a
	// stable collect-reduce, "first" really means first in input order.
	firsts := semisort.CollectReduce(samples, pageKey, semisort.Hash64, eq,
		func(s sample) uint64 { return s.Latency },
		func(a, b uint64) uint64 {
			if a == 0 {
				return b
			}
			return a // keep the earlier value: associative, NOT commutative
		}, 0)
	want := make(map[uint64]uint64)
	for _, s := range samples {
		if _, ok := want[s.Page]; !ok {
			want[s.Page] = s.Latency
		}
	}
	for _, kv := range firsts {
		if want[kv.Key] != kv.Value {
			panic(fmt.Sprintf("non-commutative reduce broken for page %d", kv.Key))
		}
	}
	fmt.Printf("non-commutative first-seen reduction verified on %d pages\n", len(firsts))
}
