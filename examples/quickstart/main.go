// Quickstart: semisort a small array of sales records by branch, then
// histogram and collect-reduce the same data — the paper's introduction
// example (gather lineitems per branch, count items per month, total sales
// per brand).
package main

import (
	"fmt"

	semisort "repro"
)

type lineitem struct {
	Branch string
	Month  int
	Brand  string
	Price  float64
}

func main() {
	items := []lineitem{
		{"north", 1, "acme", 9.99},
		{"south", 1, "zenith", 17.50},
		{"north", 2, "acme", 4.25},
		{"east", 1, "acme", 12.00},
		{"south", 2, "nadir", 3.75},
		{"north", 1, "zenith", 8.10},
		{"east", 3, "nadir", 21.40},
		{"south", 1, "acme", 6.60},
	}

	// Semisort: gather records of the same branch together. Only a hash
	// function and equality on the key are needed (semisort=), and the
	// grouping is stable: within a branch, input order is preserved.
	semisort.SortEq(items,
		func(it lineitem) string { return it.Branch },
		semisort.HashString,
		func(a, b string) bool { return a == b },
	)
	fmt.Println("lineitems grouped by branch:")
	for _, it := range items {
		fmt.Printf("  %-5s month=%d brand=%-6s $%.2f\n", it.Branch, it.Month, it.Brand, it.Price)
	}

	// Histogram: how many items were sold in each month?
	months := semisort.Histogram(items,
		func(it lineitem) int { return it.Month },
		func(m int) uint64 { return semisort.Hash64(uint64(m)) },
		func(a, b int) bool { return a == b },
	)
	fmt.Println("\nitems per month:")
	for _, kc := range months {
		fmt.Printf("  month %d: %d items\n", kc.Key, kc.Count)
	}

	// Collect-reduce: total sales per brand (any associative monoid works;
	// stability means even non-commutative reductions are safe).
	totals := semisort.CollectReduce(items,
		func(it lineitem) string { return it.Brand },
		semisort.HashString,
		func(a, b string) bool { return a == b },
		func(it lineitem) float64 { return it.Price },
		func(a, b float64) float64 { return a + b },
		0.0,
	)
	fmt.Println("\ntotal sales per brand:")
	for _, kv := range totals {
		fmt.Printf("  %-6s $%.2f\n", kv.Key, kv.Value)
	}
}
