package semisort_test

import (
	"testing"

	semisort "repro"
)

func TestSortEqInPlacePublicAPI(t *testing.T) {
	in := randItems(60000, 73, 21)
	out := append([]item(nil), in...)
	semisort.SortEqInPlace(out,
		func(it item) string { return it.key },
		semisort.HashString,
		func(a, b string) bool { return a == b },
	)
	// Weaker contract than SortEq: permutation + contiguity (no stability).
	want := map[string]int{}
	for _, it := range in {
		want[it.key]++
	}
	got := map[string]int{}
	closed := map[string]bool{}
	for i, it := range out {
		got[it.key]++
		if i > 0 && out[i-1].key != it.key {
			closed[out[i-1].key] = true
			if closed[it.key] {
				t.Fatalf("key %q split at %d", it.key, i)
			}
		}
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("key %q count %d want %d", k, got[k], c)
		}
	}
}

func TestSortLessInPlacePublicAPI(t *testing.T) {
	in := randItems(60000, 73, 22)
	out := append([]item(nil), in...)
	semisort.SortLessInPlace(out,
		func(it item) string { return it.key },
		semisort.HashString,
		func(a, b string) bool { return a < b },
	)
	closed := map[string]bool{}
	for i := 1; i < len(out); i++ {
		if out[i].key != out[i-1].key {
			if closed[out[i].key] {
				t.Fatalf("key %q split at %d", out[i].key, i)
			}
			closed[out[i-1].key] = true
		}
	}
}

func TestInPlaceOptionsApplied(t *testing.T) {
	a := make([]uint64, 30000)
	for i := range a {
		a[i] = uint64(i % 17)
	}
	semisort.SortEqInPlace(a,
		func(x uint64) uint64 { return x },
		semisort.Identity64,
		func(x, y uint64) bool { return x == y },
		semisort.WithSeed(3), semisort.WithLightBuckets(8), semisort.WithBaseCase(128),
	)
	closed := map[uint64]bool{}
	for i := 1; i < len(a); i++ {
		if a[i] != a[i-1] {
			if closed[a[i]] {
				t.Fatalf("key %d split", a[i])
			}
			closed[a[i-1]] = true
		}
	}
}
