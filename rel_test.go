package semisort_test

import (
	"math/rand"
	"testing"

	semisort "repro"
)

// The relational public API: dedup keeps first occurrences, the join family
// agrees with set semantics, counting and top-k agree with a map reference.
// Deep correctness, contracts and determinism live in internal/rel; these
// tests pin the exported wrappers end to end.

type click struct {
	User uint64
	Seq  int
}

func clickUser(c click) uint64 { return c.User }
func eqID(a, b uint64) bool    { return a == b }

func TestRelationalPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 200000
	clicks := make([]click, n)
	for i := range clicks {
		clicks[i] = click{User: uint64(rng.Intn(n / 4)), Seq: i}
	}
	users := make([]uint64, n/8)
	for i := range users {
		users[i] = uint64(rng.Intn(n / 2))
	}

	first := make(map[uint64]int)
	for _, c := range clicks {
		if _, ok := first[c.User]; !ok {
			first[c.User] = c.Seq
		}
	}

	deduped := semisort.Dedup(clicks, clickUser, semisort.Hash64, eqID)
	if len(deduped) != len(first) {
		t.Fatalf("Dedup: %d records, want %d distinct", len(deduped), len(first))
	}
	for _, c := range deduped {
		if first[c.User] != c.Seq {
			t.Fatalf("Dedup kept occurrence %d of user %d, want first %d", c.Seq, c.User, first[c.User])
		}
	}

	if got := semisort.CountDistinct(clicks, clickUser, semisort.Hash64, eqID); got != int64(len(first)) {
		t.Fatalf("CountDistinct: %d, want %d", got, len(first))
	}

	dv := semisort.Distinct(users, semisort.Hash64, eqID)
	uset := make(map[uint64]bool)
	for _, u := range users {
		uset[u] = true
	}
	if len(dv) != len(uset) {
		t.Fatalf("Distinct: %d values, want %d", len(dv), len(uset))
	}

	inUsers := make(map[uint64]int)
	for _, u := range users {
		inUsers[u]++
	}
	joined := semisort.JoinEq(clicks, users, clickUser, semisort.Identity64, semisort.Hash64, eqID,
		func(c click, u uint64) int { return c.Seq })
	wantJoin := 0
	for _, c := range clicks {
		wantJoin += inUsers[c.User]
	}
	if len(joined) != wantJoin {
		t.Fatalf("JoinEq: %d rows, want %d", len(joined), wantJoin)
	}

	semi := semisort.SemiJoinEq(clicks, users, clickUser, semisort.Identity64, semisort.Hash64, eqID)
	anti := semisort.AntiJoinEq(clicks, users, clickUser, semisort.Identity64, semisort.Hash64, eqID)
	wantSemi := 0
	for _, c := range clicks {
		if inUsers[c.User] > 0 {
			wantSemi++
		}
	}
	if len(semi) != wantSemi || len(anti) != len(clicks)-wantSemi {
		t.Fatalf("SemiJoinEq/AntiJoinEq: %d/%d rows, want %d/%d",
			len(semi), len(anti), wantSemi, len(clicks)-wantSemi)
	}

	counts := make(map[uint64]int64)
	for _, c := range clicks {
		counts[c.User]++
	}
	top := semisort.TopK(clicks, 3, clickUser, semisort.Hash64, eqID)
	if len(top) != 3 {
		t.Fatalf("TopK: %d entries, want 3", len(top))
	}
	prev := int64(1) << 62
	for _, kc := range top {
		if counts[kc.Key] != kc.Count {
			t.Fatalf("TopK: user %d count %d, want %d", kc.Key, kc.Count, counts[kc.Key])
		}
		if kc.Count > prev {
			t.Fatalf("TopK: counts not non-increasing")
		}
		prev = kc.Count
	}
	for u, c := range counts {
		if c > top[len(top)-1].Count {
			found := false
			for _, kc := range top {
				found = found || kc.Key == u
			}
			if !found {
				t.Fatalf("TopK missed user %d with count %d > weakest selected %d", u, c, top[len(top)-1].Count)
			}
		}
	}
}

func TestRelationalRuntimeOptionAndClose(t *testing.T) {
	// Per-tenant pool: run a relational call on a private runtime, then shut
	// it down; the closed runtime must still serve (serial) calls.
	rt := semisort.NewRuntime(4)
	keys := make([]uint64, 100000)
	for i := range keys {
		keys[i] = uint64(i % 5000)
	}
	before := semisort.CountDistinct(keys, semisort.Identity64, semisort.Hash64, eqID, semisort.WithRuntime(rt))
	rt.Close()
	after := semisort.CountDistinct(keys, semisort.Identity64, semisort.Hash64, eqID, semisort.WithRuntime(rt))
	if before != 5000 || after != 5000 {
		t.Fatalf("CountDistinct across Close: %d then %d, want 5000 both", before, after)
	}
}
