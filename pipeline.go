package semisort

import (
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/rel"
)

// Query begins a fused pipeline over a: a fluent chain of relational stages
// (Dedup, Sort, GroupBy, JoinEq) ending in one terminal (Run, Groups,
// Histogram, CountDistinct, TopK). The pipeline's fusion contract is
// hash-once-per-pipeline: each stage hands its successor everything it
// already knows about its output — the per-record cached hashes, the level-0
// heavy keys its sampling promoted, whether equal keys are contiguous
// (grouped) or unique (distinct) — so the chain as a whole calls hash at
// most once per input record, where the same ops composed by hand would
// re-hash every intermediate result. Stages that can exploit upstream
// structure skip the distribution driver outright: dedup over grouped data
// is a gather, a histogram over grouped data reads group lengths, a join of
// two grouped inputs matches groups (one hash per group), and a join feeding
// a counting terminal (Histogram, TopK, CountDistinct) never materializes a
// joined row — per-key counts multiply instead.
//
// A pipeline is single-use: each stage consumes its receiver and each
// terminal releases the pipeline's pooled state. Invoking any stage or
// terminal after a terminal ended the pipeline panics with a
// *PipelineConsumedError naming the offending call (errors.Is-matchable
// against ErrPipelineConsumed); build a fresh Query per query instead of
// caching pipeline values. Stages never modify a (the first stage that
// needs to reorder records copies once); intermediate results live in
// pipeline-owned slices. Results are deterministic for a fixed seed;
// output order is deterministic but unspecified, matching the
// non-pipelined ops.
//
// Failure containment matches the standalone ops: every stage and terminal
// runs under the call guard, so a panic in a user callback surfaces as a
// *PanicError and a WithContext cancellation is delivered by the
// error-returning terminals (RunE, GroupsE, HistogramE, TopKE,
// CountDistinctE). A faulted stage discards the pipeline's intermediate
// state — never returning possibly half-mutated buffers to the arena — and
// the fault rides the chain: later stages are no-ops and the terminal
// reports it, so a fluent chain needs exactly one error check, at the end.
//
//	top := semisort.Query(orders, orderUser, hashU64, eqU64).
//	    Dedup().
//	    JoinEq(clicks, clickUser).
//	    TopK(10)
func Query[R, K any](a []R, key func(R) K, hash func(K) uint64, eq func(K, K) bool, opts ...Option) *Pipeline[R, K] {
	cfg := buildConfig(opts)
	var stages *[]StageStats
	if cfg.Stats != nil {
		stages = new([]StageStats)
	}
	return &Pipeline[R, K]{c: pipeCore[R, K]{
		cfg:    cfg,
		data:   a,
		key:    key,
		hash:   hash,
		eq:     eq,
		stages: stages,
	}}
}

// Joined is one row of a fused equi-join: the matched records of the two
// sides. Downstream stages key joined rows by the join key (read from Left).
type Joined[R any] struct {
	Left, Right R
}

// Pipeline is an in-flight fused query; see Query. The zero value is not
// usable.
type Pipeline[R, K any] struct {
	c pipeCore[R, K]
}

// Dedup keeps one record per distinct key (the key's first record in input
// order) and marks the output distinct. Grouped input needs one gather and
// no hashing; otherwise the dedup runs on the driver with the input plane
// (cached hashes, adopted heavy keys) and emits the output's hash plane for
// the next stage.
func (p *Pipeline[R, K]) Dedup() *Pipeline[R, K] { p.c.dedup("Dedup"); return p }

// Sort groups equal-key records contiguously (semisort=) and records the
// group boundaries, so every downstream stage sees grouped data. An upstream
// hash plane is consumed in place of re-hashing: the sort issues zero user
// hash calls then. The first Sort on caller-provided data copies it once;
// pipeline-owned data sorts in place.
func (p *Pipeline[R, K]) Sort() *Pipeline[R, K] { p.c.sort("Sort"); return p }

// GroupBy is Sort under its relational name: group equal-key records
// contiguously and carry the boundaries forward.
func (p *Pipeline[R, K]) GroupBy() *Pipeline[R, K] { p.c.sort("GroupBy"); return p }

// JoinEq stages the inner equi-join of the pipeline with relation b (joined
// on eq(key(r), keyB(s)); both sides key into the same K). The join is
// deferred: a counting terminal (Histogram, TopK, CountDistinct) computes
// per-key counts and never materializes a joined row — under skew the join
// can emit far more rows than either input holds, and this is the
// structural win of fusing — while any other continuation materializes
// Joined rows once, emitting their plane for further fused stages. The
// receiver is consumed. A joined pipeline cannot join again (Go's generics
// forbid the unbounded Joined[Joined[...]] type growth a fluent re-join
// would need); chain a fresh Query over its Run output instead.
func (p *Pipeline[R, K]) JoinEq(b []R, keyB func(R) K) *JoinedPipeline[R, K] {
	p.c.check("JoinEq")
	p.c.staged("JoinEq", func() { p.c.settle() })
	if p.c.fault != nil {
		return faultedJoin(&p.c)
	}
	pj := &eqJoin[R, K]{
		a: p.c.data, b: b,
		keyA: p.c.key, keyB: keyB,
		hash: p.c.hash, eq: p.c.eq,
	}
	pj.inA, p.c.plane = p.c.plane, core.Plane[K]{}
	p.c.used = true
	return joinedPipeline(&p.c, pj)
}

// JoinEqP is JoinEq with another pipeline as the right side, joined on the
// two pipelines' keys: both sides' planes fuse into the join (neither side
// re-hashes what upstream already hashed), and when both sides arrive
// grouped the join skips the driver entirely and matches groups — one hash
// call per group instead of one per record. Both pipelines are consumed.
func (p *Pipeline[R, K]) JoinEqP(b *Pipeline[R, K]) *JoinedPipeline[R, K] {
	p.c.check("JoinEqP")
	b.c.check("JoinEqP")
	p.c.staged("JoinEqP", func() { p.c.settle() })
	b.c.staged("JoinEqP", func() { b.c.settle() })
	if p.c.fault != nil || b.c.fault != nil {
		// Either side's fault consumes both and rides into the join.
		if p.c.fault == nil {
			p.c.fault = b.c.fault
		}
		b.c.fault = nil
		b.c.used = true
		return faultedJoin(&p.c)
	}
	pj := &eqJoin[R, K]{
		a: p.c.data, b: b.c.data,
		keyA: p.c.key, keyB: b.c.key,
		hash: p.c.hash, eq: p.c.eq,
	}
	pj.inA, p.c.plane = p.c.plane, core.Plane[K]{}
	pj.inB, b.c.plane = b.c.plane, core.Plane[K]{}
	pj.grouped = pj.inA.Grouped && pj.inB.Grouped
	p.c.used, b.c.used = true, true
	return joinedPipeline(&p.c, pj)
}

// Run materializes the pipeline's records and ends it.
func (p *Pipeline[R, K]) Run() []R {
	out, err := p.c.runE("Run")
	mustCall(err)
	return out
}

// RunE is Run with an error return for cancellable pipelines: combined with
// WithContext on Query it returns ctx.Err() once the query has unwound and
// its pooled state is discarded. A fault in an earlier stage is reported
// here too — one error check covers the whole fluent chain.
func (p *Pipeline[R, K]) RunE() ([]R, error) { return p.c.runE("RunE") }

// Groups materializes the pipeline's records grouped by key (sorting first
// if no upstream stage grouped them) and returns the records with their
// group boundaries. It ends the pipeline.
func (p *Pipeline[R, K]) Groups() ([]R, []Group) {
	out, groups, err := p.c.groupsE("Groups")
	mustCall(err)
	return out, groups
}

// GroupsE is Groups with an error return for cancellable pipelines; see
// RunE for the contract.
func (p *Pipeline[R, K]) GroupsE() ([]R, []Group, error) { return p.c.groupsE("GroupsE") }

// Histogram counts each distinct key's records and ends the pipeline. A
// staged join counts without materializing rows; grouped data reads group
// lengths; distinct data is all ones; otherwise the count-only driver runs
// over the input plane.
func (p *Pipeline[R, K]) Histogram() []KeyCount[K] {
	out, err := p.c.histogramE("Histogram")
	mustCall(err)
	return out
}

// HistogramE is Histogram with an error return for cancellable pipelines;
// see RunE for the contract.
func (p *Pipeline[R, K]) HistogramE() ([]KeyCount[K], error) { return p.c.histogramE("HistogramE") }

// TopK returns the k most frequent keys with their counts, ordered by
// descending count (ties broken deterministically), and ends the pipeline.
// The selection runs over the fused histogram — O(distinct) or O(matched
// groups), never over materialized join rows.
func (p *Pipeline[R, K]) TopK(k int) []KeyCount[K] {
	out, err := p.c.topKE("TopK", k)
	mustCall(err)
	return out
}

// TopKE is TopK with an error return for cancellable pipelines; see RunE
// for the contract.
func (p *Pipeline[R, K]) TopKE(k int) ([]KeyCount[K], error) { return p.c.topKE("TopKE", k) }

// CountDistinct returns the number of distinct keys and ends the pipeline.
// Distinct data is a length; grouped data a group count; a staged join the
// number of matched keys; otherwise the count-only driver runs over the
// input plane.
func (p *Pipeline[R, K]) CountDistinct() int64 {
	n, err := p.c.countDistinctE("CountDistinct")
	mustCall(err)
	return n
}

// CountDistinctE is CountDistinct with an error return for cancellable
// pipelines; see RunE for the contract.
func (p *Pipeline[R, K]) CountDistinctE() (int64, error) {
	return p.c.countDistinctE("CountDistinctE")
}

// Stats returns the per-stage statistics of a WithStats pipeline, one entry
// per stage/terminal in execution order (nil without the option). Unlike
// stages and terminals it is callable on a consumed pipeline — read it
// after the terminal, when every stage has merged its counters; the
// WithStats target holds the pipeline's total.
func (p *Pipeline[R, K]) Stats() []StageStats { return p.c.stageStats() }

// JoinedPipeline is a pipeline over the rows of a staged equi-join (see
// Pipeline.JoinEq). It offers every stage and terminal except a further
// join.
type JoinedPipeline[R, K any] struct {
	c pipeCore[Joined[R], K]
}

// joinedPipeline wraps a staged join as the next pipeline; joined rows key
// by the join key, read from the left record.
func joinedPipeline[R, K any](c *pipeCore[R, K], pj *eqJoin[R, K]) *JoinedPipeline[R, K] {
	keyA := c.key
	return &JoinedPipeline[R, K]{c: pipeCore[Joined[R], K]{
		cfg:    c.cfg,
		key:    func(j Joined[R]) K { return keyA(j.Left) },
		hash:   c.hash,
		eq:     c.eq,
		pend:   pj,
		owned:  true,
		stages: c.stages,
	}}
}

// faultedJoin builds the joined pipeline for a join whose input side
// faulted while settling: the fault transfers to the new pipeline (the
// receiver is left consumed), so the terminal at the end of the chain
// still reports it.
func faultedJoin[R, K any](c *pipeCore[R, K]) *JoinedPipeline[R, K] {
	jp := &JoinedPipeline[R, K]{c: pipeCore[Joined[R], K]{
		cfg:    c.cfg,
		hash:   c.hash,
		eq:     c.eq,
		fault:  c.fault,
		stages: c.stages,
	}}
	c.fault = nil
	c.used = true
	return jp
}

// Dedup keeps one joined row per distinct join key; see Pipeline.Dedup.
func (p *JoinedPipeline[R, K]) Dedup() *JoinedPipeline[R, K] { p.c.dedup("Dedup"); return p }

// Sort groups equal-key joined rows contiguously; see Pipeline.Sort.
func (p *JoinedPipeline[R, K]) Sort() *JoinedPipeline[R, K] { p.c.sort("Sort"); return p }

// GroupBy is Sort under its relational name.
func (p *JoinedPipeline[R, K]) GroupBy() *JoinedPipeline[R, K] { p.c.sort("GroupBy"); return p }

// Run materializes the joined rows and ends the pipeline.
func (p *JoinedPipeline[R, K]) Run() []Joined[R] {
	out, err := p.c.runE("Run")
	mustCall(err)
	return out
}

// RunE is Run with an error return for cancellable pipelines; see
// Pipeline.RunE for the contract.
func (p *JoinedPipeline[R, K]) RunE() ([]Joined[R], error) { return p.c.runE("RunE") }

// Groups materializes the joined rows grouped by join key; see
// Pipeline.Groups.
func (p *JoinedPipeline[R, K]) Groups() ([]Joined[R], []Group) {
	out, groups, err := p.c.groupsE("Groups")
	mustCall(err)
	return out, groups
}

// GroupsE is Groups with an error return for cancellable pipelines; see
// Pipeline.RunE for the contract.
func (p *JoinedPipeline[R, K]) GroupsE() ([]Joined[R], []Group, error) {
	return p.c.groupsE("GroupsE")
}

// Histogram counts each join key's rows WITHOUT materializing them; see
// Pipeline.Histogram.
func (p *JoinedPipeline[R, K]) Histogram() []KeyCount[K] {
	out, err := p.c.histogramE("Histogram")
	mustCall(err)
	return out
}

// HistogramE is Histogram with an error return for cancellable pipelines;
// see Pipeline.RunE for the contract.
func (p *JoinedPipeline[R, K]) HistogramE() ([]KeyCount[K], error) {
	return p.c.histogramE("HistogramE")
}

// TopK returns the k join keys with the most rows, counted without
// materializing them; see Pipeline.TopK.
func (p *JoinedPipeline[R, K]) TopK(k int) []KeyCount[K] {
	out, err := p.c.topKE("TopK", k)
	mustCall(err)
	return out
}

// TopKE is TopK with an error return for cancellable pipelines; see
// Pipeline.RunE for the contract.
func (p *JoinedPipeline[R, K]) TopKE(k int) ([]KeyCount[K], error) { return p.c.topKE("TopKE", k) }

// CountDistinct returns the number of join keys with at least one row,
// counted without materializing rows; see Pipeline.CountDistinct.
func (p *JoinedPipeline[R, K]) CountDistinct() int64 {
	n, err := p.c.countDistinctE("CountDistinct")
	mustCall(err)
	return n
}

// CountDistinctE is CountDistinct with an error return for cancellable
// pipelines; see Pipeline.RunE for the contract.
func (p *JoinedPipeline[R, K]) CountDistinctE() (int64, error) {
	return p.c.countDistinctE("CountDistinctE")
}

// Stats returns the per-stage statistics of a WithStats pipeline, covering
// the pre-join stages of the originating Query too (the record is shared
// across the join); see Pipeline.Stats.
func (p *JoinedPipeline[R, K]) Stats() []StageStats { return p.c.stageStats() }

// pipeCore is the pipeline machinery shared by Pipeline and JoinedPipeline:
// the data with everything upstream already knows about it (plane), or a
// not-yet-materialized staged join (pend). It deliberately has no join
// method — the fluent wrappers add those where the type system permits.
type pipeCore[R, K any] struct {
	cfg  core.Config
	data []R
	key  func(R) K
	hash func(K) uint64
	eq   func(K, K) bool

	plane core.Plane[K]     // what upstream already knows about data
	pend  pendingJoin[R, K] // staged join; non-nil means data is not yet materialized
	owned bool              // data is pipeline-owned (safe to reorder in place)
	used  bool
	fault error // a stage faulted; later stages no-op and the terminal reports it

	// stages, armed by Query when WithStats is present, accumulates one
	// StageStats per stage/terminal in execution order. A pointer to a
	// shared slice (not the slice itself) so a join's new pipeCore keeps
	// appending to the same record, and Stats() reads it after the terminal.
	stages *[]StageStats
}

// pendingJoin is a join whose materialization is deferred until a terminal
// decides whether rows are needed at all: counting terminals take per-key
// counts (counts), everything else forces the rows (materialize, which may
// emit the output's plane into out).
type pendingJoin[R, K any] interface {
	counts(cfg core.Config) []collect.KV[K, int64]
	materialize(cfg core.Config, out *core.Plane[K]) []R
	release()
}

func (p *pipeCore[R, K]) dedup(op string) {
	p.check(op)
	p.staged(op, func() {
		p.settle()
		switch {
		case p.plane.Distinct:
			// Already one record per key: nothing to drop.
		case p.plane.Grouped:
			p.data = rel.FirstPerGroup(p.rt(), p.data, p.plane.Bounds)
			p.plane.Release()
			p.plane.Distinct = true
			p.owned = true
		default:
			out, hout := rel.DedupPlane(p.data, &p.plane, true, p.key, p.hash, p.eq, p.cfg)
			p.plane.Release()
			p.data = out
			p.plane.Distinct = true
			// Distinct output makes the carried heavy keys singletons, so only
			// the hash plane rides forward.
			if hout != nil {
				p.plane.Hashes, p.plane.HBuf = hout.S, hout
			}
			p.owned = true
		}
	})
}

func (p *pipeCore[R, K]) sort(op string) {
	p.check(op)
	p.staged(op, func() {
		p.settle()
		if !p.plane.Grouped {
			p.sortInGuard()
		}
	})
}

func (p *pipeCore[R, K]) runE(op string) (out []R, err error) {
	p.check(op)
	if err = p.takeFault(); err != nil {
		return nil, err
	}
	p.staged(op, func() {
		p.settle()
		out = p.data
		p.finish()
	})
	if err = p.takeFault(); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *pipeCore[R, K]) groupsE(op string) (out []R, groups []Group, err error) {
	p.check(op)
	if err = p.takeFault(); err != nil {
		return nil, nil, err
	}
	p.staged(op, func() {
		p.settle()
		if !p.plane.Grouped {
			p.sortInGuard()
		}
		bounds := p.plane.Bounds
		groups = make([]Group, len(bounds)-1)
		for g := range groups {
			groups[g] = Group{Lo: int(bounds[g]), Hi: int(bounds[g+1])}
		}
		out = p.data
		p.finish()
	})
	if err = p.takeFault(); err != nil {
		return nil, nil, err
	}
	return out, groups, nil
}

// sortInGuard is the sort body shared by the Sort stage and the Groups
// terminal's implicit sort; the caller holds the call guard and has settled
// any staged join.
func (p *pipeCore[R, K]) sortInGuard() {
	if !p.owned {
		p.data = append([]R(nil), p.data...)
		p.owned = true
	}
	if p.plane.Hashes != nil {
		// The role-swapping recursion scribbles on the plane; it is consumed.
		core.SortEqHashed(p.data, p.plane.Hashes, p.key, p.hash, p.eq, p.cfg)
	} else {
		core.SortEq(p.data, p.key, p.hash, p.eq, p.cfg)
	}
	distinct := p.plane.Distinct
	p.plane.Release()
	p.plane.Distinct = distinct
	p.setBounds()
}

func (p *pipeCore[R, K]) histogramE(op string) (out []KeyCount[K], err error) {
	p.check(op)
	if err = p.takeFault(); err != nil {
		return nil, err
	}
	p.staged(op, func() {
		kv := p.histKV()
		p.finish()
		out = make([]KeyCount[K], len(kv))
		for i, e := range kv {
			out[i] = KeyCount[K]{Key: e.Key, Count: e.Value}
		}
	})
	if err = p.takeFault(); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *pipeCore[R, K]) topKE(op string, k int) (out []KeyCount[K], err error) {
	p.check(op)
	if err = p.takeFault(); err != nil {
		return nil, err
	}
	p.staged(op, func() {
		kv := rel.SelectTopK(p.histKV(), k, p.cfg)
		p.finish()
		out = make([]KeyCount[K], len(kv))
		for i, e := range kv {
			out[i] = KeyCount[K]{Key: e.Key, Count: e.Value}
		}
	})
	if err = p.takeFault(); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *pipeCore[R, K]) countDistinctE(op string) (n int64, err error) {
	p.check(op)
	if err = p.takeFault(); err != nil {
		return 0, err
	}
	p.staged(op, func() {
		switch {
		case p.pend != nil:
			n = int64(len(p.pend.counts(p.cfg)))
		case p.plane.Grouped:
			if g := len(p.plane.Bounds) - 1; g > 0 {
				n = int64(g)
			}
		case p.plane.Distinct:
			n = int64(len(p.data))
		default:
			n = rel.CountDistinctPlane(p.data, &p.plane, p.key, p.hash, p.eq, p.cfg)
		}
		p.finish()
	})
	if err = p.takeFault(); err != nil {
		return 0, err
	}
	return n, nil
}

// histKV computes the fused per-key counts feeding histogram and topK.
func (p *pipeCore[R, K]) histKV() []collect.KV[K, int64] {
	switch {
	case p.pend != nil:
		return p.pend.counts(p.cfg)
	case p.plane.Grouped:
		return rel.GroupedHistogram(p.rt(), p.data, p.plane.Bounds, p.key)
	case p.plane.Distinct:
		kv := make([]collect.KV[K, int64], len(p.data))
		key, data := p.key, p.data
		p.rt().For(len(data), 1024, func(i int) {
			kv[i] = collect.KV[K, int64]{Key: key(data[i]), Value: 1}
		})
		return kv
	default:
		return collect.HistogramPlane(p.data, &p.plane, p.key, p.hash, p.eq, p.cfg)
	}
}

// settle forces a staged join into materialized rows (its plane riding
// forward), for stages and terminals that need the records themselves.
func (p *pipeCore[R, K]) settle() {
	if p.pend == nil {
		return
	}
	var out core.Plane[K]
	p.data = p.pend.materialize(p.cfg, &out)
	p.pend.release()
	p.pend = nil
	p.plane = out
	p.owned = true
}

// setBounds records the group boundaries of the (grouped) data: the g+1
// fenceposts, in an arena lease released when the pipeline ends.
func (p *pipeCore[R, K]) setBounds() {
	n := len(p.data)
	rt := p.rt()
	heads := parallel.PackIndexIn(rt, n, func(i int) bool {
		return i == 0 || !p.eq(p.key(p.data[i-1]), p.key(p.data[i]))
	})
	bb := parallel.GetBuf[int32](rt.Scratch(), len(heads)+1)
	for i, h := range heads {
		bb.S[i] = int32(h)
	}
	bb.S[len(heads)] = int32(n)
	p.plane.Grouped = true
	p.plane.Bounds, p.plane.BBuf = bb.S[:len(heads)+1], bb
}

func (p *pipeCore[R, K]) rt() *parallel.Runtime { return parallel.Or(p.cfg.Runtime) }

// check guards against reuse of a consumed pipeline. A faulted pipeline is
// not "reused" — its stages no-op and its terminal delivers the fault, so
// the one error check at the end of a fluent chain suffices.
func (p *pipeCore[R, K]) check(op string) {
	if p.used && p.fault == nil {
		panic(&PipelineConsumedError{Op: op})
	}
}

// staged runs one stage or terminal body under the call guard, recording
// its CallStats as a separate entry when the pipeline carries WithStats:
// the stage's driver calls drain into a per-stage struct, which is folded
// into the caller's total and appended to the stage record. Without stats
// it is exactly guarded.
func (p *pipeCore[R, K]) staged(op string, fn func()) {
	if p.stages == nil || p.cfg.Stats == nil || p.fault != nil {
		p.guarded(fn)
		return
	}
	total := p.cfg.Stats
	st := new(CallStats)
	p.cfg.Stats = st
	// Deferred so a *PanicError unwinding through the guard still restores
	// the caller's pointer and records whatever the stage counted before it
	// died (a faulted stage's entry is partial, not absent).
	defer func() {
		p.cfg.Stats = total
		total.Add(*st)
		*p.stages = append(*p.stages, StageStats{Op: op, Stats: *st})
	}()
	p.guarded(fn)
}

// guarded runs one stage or terminal body under the call guard (admission,
// a call-scoped lease ledger, panic containment). A faulted pipeline skips
// the body — the fault rides to the terminal. A cancellation inside the
// body records the fault and discards the pipeline's half-consumed state; a
// user-callback panic discards state too and re-raises as *PanicError.
func (p *pipeCore[R, K]) guarded(fn func()) {
	if p.fault != nil {
		return
	}
	saved := p.cfg
	done, aerr := enterCall(&p.cfg)
	if aerr != nil {
		p.cfg = saved
		p.fail(aerr)
		return
	}
	var cerr error
	completed := false
	// LIFO: done runs first (settling or aborting the ledger, possibly
	// re-panicking), then this restore/fail hook — which therefore runs even
	// when a *PanicError is unwinding through.
	defer func() {
		p.cfg = saved
		if cerr != nil {
			p.fail(cerr)
		} else if !completed {
			p.fail(errPipelineFaulted)
		}
	}()
	defer done(&cerr)
	fn()
	completed = true
}

// fail records the pipeline's fault and discards its intermediate state.
// The plane's buffers and any staged join may be mid-mutation when a fault
// unwinds through a stage, so nothing is released back to the arena — the
// references are dropped for the GC to take.
func (p *pipeCore[R, K]) fail(err error) {
	if p.fault == nil {
		p.fault = err
	}
	p.plane = core.Plane[K]{}
	p.pend = nil
	p.data = nil
	p.used = true
}

// takeFault delivers a pending fault exactly once: the pipeline comes out
// consumed, so touching it again raises the consumed panic rather than
// re-reporting a stale error.
func (p *pipeCore[R, K]) takeFault() error {
	if p.fault == nil {
		return nil
	}
	err := p.fault
	p.fault = nil
	p.used = true
	return err
}

// stageStats copies the accumulated per-stage record (nil without
// WithStats). A copy, so the caller cannot alias the pipeline's backing
// slice across a later join continuation's appends.
func (p *pipeCore[R, K]) stageStats() []StageStats {
	if p.stages == nil {
		return nil
	}
	return append([]StageStats(nil), *p.stages...)
}

// finish releases the pipeline's pooled state and marks it consumed.
func (p *pipeCore[R, K]) finish() {
	p.plane.Release()
	if p.pend != nil {
		p.pend.release()
		p.pend = nil
	}
	p.used = true
}

// eqJoin is the staged same-record-type equi-join behind JoinEq/JoinEqP.
type eqJoin[R, K any] struct {
	a, b       []R
	inA, inB   core.Plane[K]
	keyA, keyB func(R) K
	hash       func(K) uint64
	eq         func(K, K) bool
	grouped    bool // both sides grouped: match groups, skip the driver
}

func (p *eqJoin[R, K]) counts(cfg core.Config) []collect.KV[K, int64] {
	if p.grouped {
		return rel.JoinGroupedCount(p.a, p.inA.Bounds, p.b, p.inB.Bounds,
			p.keyA, p.keyB, p.hash, p.eq, cfg)
	}
	return rel.JoinCount(p.a, &p.inA, p.b, &p.inB, p.keyA, p.keyB, p.hash, p.eq, cfg)
}

func (p *eqJoin[R, K]) materialize(cfg core.Config, out *core.Plane[K]) []Joined[R] {
	joinF := func(l, r R) Joined[R] { return Joined[R]{Left: l, Right: r} }
	if p.grouped {
		return rel.JoinGrouped(p.a, p.inA.Bounds, p.b, p.inB.Bounds,
			p.keyA, p.keyB, p.hash, p.eq, joinF, cfg)
	}
	return rel.JoinPlane(p.a, &p.inA, p.b, &p.inB, p.keyA, p.keyB, p.hash, p.eq, joinF, out, cfg)
}

func (p *eqJoin[R, K]) release() {
	p.inA.Release()
	p.inB.Release()
}
