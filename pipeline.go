package semisort

import (
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/rel"
)

// Query begins a fused pipeline over a: a fluent chain of relational stages
// (Dedup, Sort, GroupBy, JoinEq) ending in one terminal (Run, Groups,
// Histogram, CountDistinct, TopK). The pipeline's fusion contract is
// hash-once-per-pipeline: each stage hands its successor everything it
// already knows about its output — the per-record cached hashes, the level-0
// heavy keys its sampling promoted, whether equal keys are contiguous
// (grouped) or unique (distinct) — so the chain as a whole calls hash at
// most once per input record, where the same ops composed by hand would
// re-hash every intermediate result. Stages that can exploit upstream
// structure skip the distribution driver outright: dedup over grouped data
// is a gather, a histogram over grouped data reads group lengths, a join of
// two grouped inputs matches groups (one hash per group), and a join feeding
// a counting terminal (Histogram, TopK, CountDistinct) never materializes a
// joined row — per-key counts multiply instead.
//
// A pipeline is single-use: each stage consumes its receiver and each
// terminal releases the pipeline's pooled state; reusing a consumed pipeline
// panics. Stages never modify a (the first stage that needs to reorder
// records copies once); intermediate results live in pipeline-owned slices.
// Results are deterministic for a fixed seed; output order is deterministic
// but unspecified, matching the non-pipelined ops.
//
//	top := semisort.Query(orders, orderUser, hashU64, eqU64).
//	    Dedup().
//	    JoinEq(clicks, clickUser).
//	    TopK(10)
func Query[R, K any](a []R, key func(R) K, hash func(K) uint64, eq func(K, K) bool, opts ...Option) *Pipeline[R, K] {
	return &Pipeline[R, K]{c: pipeCore[R, K]{
		cfg:  buildConfig(opts),
		data: a,
		key:  key,
		hash: hash,
		eq:   eq,
	}}
}

// Joined is one row of a fused equi-join: the matched records of the two
// sides. Downstream stages key joined rows by the join key (read from Left).
type Joined[R any] struct {
	Left, Right R
}

// Pipeline is an in-flight fused query; see Query. The zero value is not
// usable.
type Pipeline[R, K any] struct {
	c pipeCore[R, K]
}

// Dedup keeps one record per distinct key (the key's first record in input
// order) and marks the output distinct. Grouped input needs one gather and
// no hashing; otherwise the dedup runs on the driver with the input plane
// (cached hashes, adopted heavy keys) and emits the output's hash plane for
// the next stage.
func (p *Pipeline[R, K]) Dedup() *Pipeline[R, K] { p.c.dedup(); return p }

// Sort groups equal-key records contiguously (semisort=) and records the
// group boundaries, so every downstream stage sees grouped data. An upstream
// hash plane is consumed in place of re-hashing: the sort issues zero user
// hash calls then. The first Sort on caller-provided data copies it once;
// pipeline-owned data sorts in place.
func (p *Pipeline[R, K]) Sort() *Pipeline[R, K] { p.c.sort(); return p }

// GroupBy is Sort under its relational name: group equal-key records
// contiguously and carry the boundaries forward.
func (p *Pipeline[R, K]) GroupBy() *Pipeline[R, K] { p.c.sort(); return p }

// JoinEq stages the inner equi-join of the pipeline with relation b (joined
// on eq(key(r), keyB(s)); both sides key into the same K). The join is
// deferred: a counting terminal (Histogram, TopK, CountDistinct) computes
// per-key counts and never materializes a joined row — under skew the join
// can emit far more rows than either input holds, and this is the
// structural win of fusing — while any other continuation materializes
// Joined rows once, emitting their plane for further fused stages. The
// receiver is consumed. A joined pipeline cannot join again (Go's generics
// forbid the unbounded Joined[Joined[...]] type growth a fluent re-join
// would need); chain a fresh Query over its Run output instead.
func (p *Pipeline[R, K]) JoinEq(b []R, keyB func(R) K) *JoinedPipeline[R, K] {
	p.c.check()
	p.c.settle()
	pj := &eqJoin[R, K]{
		a: p.c.data, b: b,
		keyA: p.c.key, keyB: keyB,
		hash: p.c.hash, eq: p.c.eq,
	}
	pj.inA, p.c.plane = p.c.plane, core.Plane[K]{}
	p.c.used = true
	return joinedPipeline(&p.c, pj)
}

// JoinEqP is JoinEq with another pipeline as the right side, joined on the
// two pipelines' keys: both sides' planes fuse into the join (neither side
// re-hashes what upstream already hashed), and when both sides arrive
// grouped the join skips the driver entirely and matches groups — one hash
// call per group instead of one per record. Both pipelines are consumed.
func (p *Pipeline[R, K]) JoinEqP(b *Pipeline[R, K]) *JoinedPipeline[R, K] {
	p.c.check()
	b.c.check()
	p.c.settle()
	b.c.settle()
	pj := &eqJoin[R, K]{
		a: p.c.data, b: b.c.data,
		keyA: p.c.key, keyB: b.c.key,
		hash: p.c.hash, eq: p.c.eq,
	}
	pj.inA, p.c.plane = p.c.plane, core.Plane[K]{}
	pj.inB, b.c.plane = b.c.plane, core.Plane[K]{}
	pj.grouped = pj.inA.Grouped && pj.inB.Grouped
	p.c.used, b.c.used = true, true
	return joinedPipeline(&p.c, pj)
}

// Run materializes the pipeline's records and ends it.
func (p *Pipeline[R, K]) Run() []R { return p.c.run() }

// Groups materializes the pipeline's records grouped by key (sorting first
// if no upstream stage grouped them) and returns the records with their
// group boundaries. It ends the pipeline.
func (p *Pipeline[R, K]) Groups() ([]R, []Group) { return p.c.groups() }

// Histogram counts each distinct key's records and ends the pipeline. A
// staged join counts without materializing rows; grouped data reads group
// lengths; distinct data is all ones; otherwise the count-only driver runs
// over the input plane.
func (p *Pipeline[R, K]) Histogram() []KeyCount[K] { return p.c.histogram() }

// TopK returns the k most frequent keys with their counts, ordered by
// descending count (ties broken deterministically), and ends the pipeline.
// The selection runs over the fused histogram — O(distinct) or O(matched
// groups), never over materialized join rows.
func (p *Pipeline[R, K]) TopK(k int) []KeyCount[K] { return p.c.topK(k) }

// CountDistinct returns the number of distinct keys and ends the pipeline.
// Distinct data is a length; grouped data a group count; a staged join the
// number of matched keys; otherwise the count-only driver runs over the
// input plane.
func (p *Pipeline[R, K]) CountDistinct() int64 { return p.c.countDistinct() }

// JoinedPipeline is a pipeline over the rows of a staged equi-join (see
// Pipeline.JoinEq). It offers every stage and terminal except a further
// join.
type JoinedPipeline[R, K any] struct {
	c pipeCore[Joined[R], K]
}

// joinedPipeline wraps a staged join as the next pipeline; joined rows key
// by the join key, read from the left record.
func joinedPipeline[R, K any](c *pipeCore[R, K], pj *eqJoin[R, K]) *JoinedPipeline[R, K] {
	keyA := c.key
	return &JoinedPipeline[R, K]{c: pipeCore[Joined[R], K]{
		cfg:   c.cfg,
		key:   func(j Joined[R]) K { return keyA(j.Left) },
		hash:  c.hash,
		eq:    c.eq,
		pend:  pj,
		owned: true,
	}}
}

// Dedup keeps one joined row per distinct join key; see Pipeline.Dedup.
func (p *JoinedPipeline[R, K]) Dedup() *JoinedPipeline[R, K] { p.c.dedup(); return p }

// Sort groups equal-key joined rows contiguously; see Pipeline.Sort.
func (p *JoinedPipeline[R, K]) Sort() *JoinedPipeline[R, K] { p.c.sort(); return p }

// GroupBy is Sort under its relational name.
func (p *JoinedPipeline[R, K]) GroupBy() *JoinedPipeline[R, K] { p.c.sort(); return p }

// Run materializes the joined rows and ends the pipeline.
func (p *JoinedPipeline[R, K]) Run() []Joined[R] { return p.c.run() }

// Groups materializes the joined rows grouped by join key; see
// Pipeline.Groups.
func (p *JoinedPipeline[R, K]) Groups() ([]Joined[R], []Group) { return p.c.groups() }

// Histogram counts each join key's rows WITHOUT materializing them; see
// Pipeline.Histogram.
func (p *JoinedPipeline[R, K]) Histogram() []KeyCount[K] { return p.c.histogram() }

// TopK returns the k join keys with the most rows, counted without
// materializing them; see Pipeline.TopK.
func (p *JoinedPipeline[R, K]) TopK(k int) []KeyCount[K] { return p.c.topK(k) }

// CountDistinct returns the number of join keys with at least one row,
// counted without materializing rows; see Pipeline.CountDistinct.
func (p *JoinedPipeline[R, K]) CountDistinct() int64 { return p.c.countDistinct() }

// pipeCore is the pipeline machinery shared by Pipeline and JoinedPipeline:
// the data with everything upstream already knows about it (plane), or a
// not-yet-materialized staged join (pend). It deliberately has no join
// method — the fluent wrappers add those where the type system permits.
type pipeCore[R, K any] struct {
	cfg  core.Config
	data []R
	key  func(R) K
	hash func(K) uint64
	eq   func(K, K) bool

	plane core.Plane[K]     // what upstream already knows about data
	pend  pendingJoin[R, K] // staged join; non-nil means data is not yet materialized
	owned bool              // data is pipeline-owned (safe to reorder in place)
	used  bool
}

// pendingJoin is a join whose materialization is deferred until a terminal
// decides whether rows are needed at all: counting terminals take per-key
// counts (counts), everything else forces the rows (materialize, which may
// emit the output's plane into out).
type pendingJoin[R, K any] interface {
	counts(cfg core.Config) []collect.KV[K, int64]
	materialize(cfg core.Config, out *core.Plane[K]) []R
	release()
}

func (p *pipeCore[R, K]) dedup() {
	p.check()
	p.settle()
	switch {
	case p.plane.Distinct:
		// Already one record per key: nothing to drop.
	case p.plane.Grouped:
		p.data = rel.FirstPerGroup(p.rt(), p.data, p.plane.Bounds)
		p.plane.Release()
		p.plane.Distinct = true
		p.owned = true
	default:
		out, hout := rel.DedupPlane(p.data, &p.plane, true, p.key, p.hash, p.eq, p.cfg)
		p.plane.Release()
		p.data = out
		p.plane.Distinct = true
		// Distinct output makes the carried heavy keys singletons, so only
		// the hash plane rides forward.
		if hout != nil {
			p.plane.Hashes, p.plane.HBuf = hout.S, hout
		}
		p.owned = true
	}
}

func (p *pipeCore[R, K]) sort() {
	p.check()
	p.settle()
	if p.plane.Grouped {
		return
	}
	if !p.owned {
		p.data = append([]R(nil), p.data...)
		p.owned = true
	}
	if p.plane.Hashes != nil {
		// The role-swapping recursion scribbles on the plane; it is consumed.
		core.SortEqHashed(p.data, p.plane.Hashes, p.key, p.hash, p.eq, p.cfg)
	} else {
		core.SortEq(p.data, p.key, p.hash, p.eq, p.cfg)
	}
	distinct := p.plane.Distinct
	p.plane.Release()
	p.plane.Distinct = distinct
	p.setBounds()
}

func (p *pipeCore[R, K]) run() []R {
	p.check()
	p.settle()
	out := p.data
	p.finish()
	return out
}

func (p *pipeCore[R, K]) groups() ([]R, []Group) {
	p.check()
	p.settle()
	if !p.plane.Grouped {
		p.sortUnchecked()
	}
	bounds := p.plane.Bounds
	groups := make([]Group, len(bounds)-1)
	for g := range groups {
		groups[g] = Group{Lo: int(bounds[g]), Hi: int(bounds[g+1])}
	}
	out := p.data
	p.finish()
	return out, groups
}

// sortUnchecked is sort for internal continuation (groups sorts after its
// own check; re-checking would be fine but re-settling is not needed).
func (p *pipeCore[R, K]) sortUnchecked() {
	if !p.owned {
		p.data = append([]R(nil), p.data...)
		p.owned = true
	}
	if p.plane.Hashes != nil {
		core.SortEqHashed(p.data, p.plane.Hashes, p.key, p.hash, p.eq, p.cfg)
	} else {
		core.SortEq(p.data, p.key, p.hash, p.eq, p.cfg)
	}
	distinct := p.plane.Distinct
	p.plane.Release()
	p.plane.Distinct = distinct
	p.setBounds()
}

func (p *pipeCore[R, K]) histogram() []KeyCount[K] {
	p.check()
	kv := p.histKV()
	p.finish()
	out := make([]KeyCount[K], len(kv))
	for i, e := range kv {
		out[i] = KeyCount[K]{Key: e.Key, Count: e.Value}
	}
	return out
}

func (p *pipeCore[R, K]) topK(k int) []KeyCount[K] {
	p.check()
	kv := rel.SelectTopK(p.histKV(), k, p.cfg)
	p.finish()
	out := make([]KeyCount[K], len(kv))
	for i, e := range kv {
		out[i] = KeyCount[K]{Key: e.Key, Count: e.Value}
	}
	return out
}

func (p *pipeCore[R, K]) countDistinct() int64 {
	p.check()
	var n int64
	switch {
	case p.pend != nil:
		n = int64(len(p.pend.counts(p.cfg)))
	case p.plane.Grouped:
		if g := len(p.plane.Bounds) - 1; g > 0 {
			n = int64(g)
		}
	case p.plane.Distinct:
		n = int64(len(p.data))
	default:
		n = rel.CountDistinctPlane(p.data, &p.plane, p.key, p.hash, p.eq, p.cfg)
	}
	p.finish()
	return n
}

// histKV computes the fused per-key counts feeding histogram and topK.
func (p *pipeCore[R, K]) histKV() []collect.KV[K, int64] {
	switch {
	case p.pend != nil:
		return p.pend.counts(p.cfg)
	case p.plane.Grouped:
		return rel.GroupedHistogram(p.rt(), p.data, p.plane.Bounds, p.key)
	case p.plane.Distinct:
		kv := make([]collect.KV[K, int64], len(p.data))
		key, data := p.key, p.data
		p.rt().For(len(data), 1024, func(i int) {
			kv[i] = collect.KV[K, int64]{Key: key(data[i]), Value: 1}
		})
		return kv
	default:
		return collect.HistogramPlane(p.data, &p.plane, p.key, p.hash, p.eq, p.cfg)
	}
}

// settle forces a staged join into materialized rows (its plane riding
// forward), for stages and terminals that need the records themselves.
func (p *pipeCore[R, K]) settle() {
	if p.pend == nil {
		return
	}
	var out core.Plane[K]
	p.data = p.pend.materialize(p.cfg, &out)
	p.pend.release()
	p.pend = nil
	p.plane = out
	p.owned = true
}

// setBounds records the group boundaries of the (grouped) data: the g+1
// fenceposts, in an arena lease released when the pipeline ends.
func (p *pipeCore[R, K]) setBounds() {
	n := len(p.data)
	rt := p.rt()
	heads := parallel.PackIndexIn(rt, n, func(i int) bool {
		return i == 0 || !p.eq(p.key(p.data[i-1]), p.key(p.data[i]))
	})
	bb := parallel.GetBuf[int32](rt.Scratch(), len(heads)+1)
	for i, h := range heads {
		bb.S[i] = int32(h)
	}
	bb.S[len(heads)] = int32(n)
	p.plane.Grouped = true
	p.plane.Bounds, p.plane.BBuf = bb.S[:len(heads)+1], bb
}

func (p *pipeCore[R, K]) rt() *parallel.Runtime { return parallel.Or(p.cfg.Runtime) }

func (p *pipeCore[R, K]) check() {
	if p.used {
		panic("semisort: pipeline already consumed (pipelines are single-use)")
	}
}

// finish releases the pipeline's pooled state and marks it consumed.
func (p *pipeCore[R, K]) finish() {
	p.plane.Release()
	if p.pend != nil {
		p.pend.release()
		p.pend = nil
	}
	p.used = true
}

// eqJoin is the staged same-record-type equi-join behind JoinEq/JoinEqP.
type eqJoin[R, K any] struct {
	a, b       []R
	inA, inB   core.Plane[K]
	keyA, keyB func(R) K
	hash       func(K) uint64
	eq         func(K, K) bool
	grouped    bool // both sides grouped: match groups, skip the driver
}

func (p *eqJoin[R, K]) counts(cfg core.Config) []collect.KV[K, int64] {
	if p.grouped {
		return rel.JoinGroupedCount(p.a, p.inA.Bounds, p.b, p.inB.Bounds,
			p.keyA, p.keyB, p.hash, p.eq, cfg)
	}
	return rel.JoinCount(p.a, &p.inA, p.b, &p.inB, p.keyA, p.keyB, p.hash, p.eq, cfg)
}

func (p *eqJoin[R, K]) materialize(cfg core.Config, out *core.Plane[K]) []Joined[R] {
	joinF := func(l, r R) Joined[R] { return Joined[R]{Left: l, Right: r} }
	if p.grouped {
		return rel.JoinGrouped(p.a, p.inA.Bounds, p.b, p.inB.Bounds,
			p.keyA, p.keyB, p.hash, p.eq, joinF, cfg)
	}
	return rel.JoinPlane(p.a, &p.inA, p.b, &p.inB, p.keyA, p.keyB, p.hash, p.eq, joinF, out, cfg)
}

func (p *eqJoin[R, K]) release() {
	p.inA.Release()
	p.inB.Release()
}
