package semisort

import "repro/internal/core"

// SortEqInPlace is the space-efficient variant of SortEq sketched in the
// paper's conclusion (Section 6): distribution happens inside the input
// array via cycle-chasing permutation. Extra space is 8 bytes per record —
// the hash-once array, permuted along with the records so the user
// closures still run once per record — plus O(P*alpha) per-worker scratch
// and the bucket counters; SortEq by comparison takes a full n-record
// auxiliary array plus two hash arrays (24 bytes per record on top of
// that for 16-byte records).
//
// Trade-offs versus SortEq, as the paper predicts for in-place
// distribution: the result is NOT stable (equal keys are contiguous but in
// arbitrary relative order), and the top-level permutation is sequential,
// so peak throughput is lower. Output is still deterministic for a fixed
// seed. Use it when the extra footprint of SortEq is the bottleneck.
func SortEqInPlace[R, K any](a []R, key func(R) K, hash func(K) uint64, eq func(K, K) bool, opts ...Option) {
	mustCall(SortEqInPlaceE(a, key, hash, eq, opts...))
}

// SortEqInPlaceE is SortEqInPlace with an error return for cancellable
// calls; see SortEqE for the contract. On cancellation a is a valid but
// unspecified permutation of its input.
func SortEqInPlaceE[R, K any](a []R, key func(R) K, hash func(K) uint64, eq func(K, K) bool, opts ...Option) (err error) {
	cfg := buildConfig(opts)
	done, aerr := enterCall(&cfg)
	if aerr != nil {
		return aerr
	}
	defer done(&err)
	core.SortEqInPlace(a, key, hash, eq, cfg)
	return nil
}

// SortLessInPlace is the space-efficient variant of SortLess; see
// SortEqInPlace for the trade-offs.
func SortLessInPlace[R, K any](a []R, key func(R) K, hash func(K) uint64, less func(K, K) bool, opts ...Option) {
	mustCall(SortLessInPlaceE(a, key, hash, less, opts...))
}

// SortLessInPlaceE is SortLessInPlace with an error return for cancellable
// calls; see SortEqE for the contract.
func SortLessInPlaceE[R, K any](a []R, key func(R) K, hash func(K) uint64, less func(K, K) bool, opts ...Option) (err error) {
	cfg := buildConfig(opts)
	done, aerr := enterCall(&cfg)
	if aerr != nil {
		return aerr
	}
	defer done(&err)
	core.SortLessInPlace(a, key, hash, less, cfg)
	return nil
}
