package semisort_test

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	semisort "repro"
)

// The string/[]byte-keyed public API (strkeys.go): every op must agree with
// a map reference over adversarial key shapes — empty strings, long shared
// prefixes, all-duplicates — and produce identical output across worker
// counts. Deep engine properties (arena layout, eq counting, alloc bounds)
// live in internal/strkey.

type event struct {
	URL string
	Seq int
}

func eventURL(e event) string { return e.URL }

// strCorpus builds n events over a key population mixing empty keys, short
// keys, and long shared-prefix keys that defeat cheap prefix discrimination.
func strCorpus(rng *rand.Rand, n, distinct int) []event {
	keys := make([]string, distinct)
	prefix := strings.Repeat("shared/prefix/of/considerable/length/", 3)
	for i := range keys {
		switch i % 4 {
		case 0:
			keys[i] = fmt.Sprintf("k%d", i)
		case 1:
			keys[i] = prefix + fmt.Sprintf("%09d", i)
		case 2:
			keys[i] = strings.Repeat("x", 1+i%97)
		default:
			if i == 3 {
				keys[i] = "" // one empty key in the population
			} else {
				keys[i] = fmt.Sprintf("host-%d.example.com/path/%d", i%37, i)
			}
		}
	}
	evs := make([]event, n)
	for i := range evs {
		evs[i] = event{URL: keys[rng.Intn(distinct)], Seq: i}
	}
	return evs
}

func TestStrKeyedPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, distinct = 120000, 900
	evs := strCorpus(rng, n, distinct)

	first := make(map[string]int)
	counts := make(map[string]int64)
	for _, e := range evs {
		if _, ok := first[e.URL]; !ok {
			first[e.URL] = e.Seq
		}
		counts[e.URL]++
	}

	// SortEq: same multiset, equal keys contiguous, first-touch groups.
	sorted := append([]event(nil), evs...)
	semisort.SortEqStr(sorted, eventURL)
	gotCounts := make(map[string]int64)
	seen := make(map[string]bool)
	for i := 0; i < len(sorted); {
		k := sorted[i].URL
		if seen[k] {
			t.Fatalf("SortEqStr: key %q appears in two separate runs", k)
		}
		seen[k] = true
		for i < len(sorted) && sorted[i].URL == k {
			gotCounts[k]++
			i++
		}
	}
	if !reflect.DeepEqual(gotCounts, counts) {
		t.Fatalf("SortEqStr changed the key multiset")
	}

	deduped := semisort.DedupStr(evs, eventURL)
	if len(deduped) != len(first) {
		t.Fatalf("DedupStr: %d records, want %d", len(deduped), len(first))
	}
	for _, e := range deduped {
		if first[e.URL] != e.Seq {
			t.Fatalf("DedupStr kept Seq %d of %q, want first %d", e.Seq, e.URL, first[e.URL])
		}
	}

	if got := semisort.CountDistinctStr(evs, eventURL); got != int64(len(first)) {
		t.Fatalf("CountDistinctStr: %d, want %d", got, len(first))
	}

	hist := semisort.HistogramStr(evs, eventURL)
	if len(hist) != len(counts) {
		t.Fatalf("HistogramStr: %d keys, want %d", len(hist), len(counts))
	}
	for _, kc := range hist {
		if counts[kc.Key] != kc.Count {
			t.Fatalf("HistogramStr: %q count %d, want %d", kc.Key, kc.Count, counts[kc.Key])
		}
	}

	top := semisort.TopKStr(evs, 5, eventURL)
	if len(top) != 5 {
		t.Fatalf("TopKStr: %d entries, want 5", len(top))
	}
	prev := int64(1) << 62
	for _, kc := range top {
		if counts[kc.Key] != kc.Count {
			t.Fatalf("TopKStr: %q count %d, want %d", kc.Key, kc.Count, counts[kc.Key])
		}
		if kc.Count > prev {
			t.Fatalf("TopKStr: counts not non-increasing")
		}
		prev = kc.Count
	}
	for k, c := range counts {
		if c > top[len(top)-1].Count {
			found := false
			for _, kc := range top {
				found = found || kc.Key == k
			}
			if !found {
				t.Fatalf("TopKStr missed %q with count %d", k, c)
			}
		}
	}
}

func TestStrKeyedJoins(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	evs := strCorpus(rng, 60000, 700)
	dims := strCorpus(rng, 900, 1100) // overlaps part of the fact keys

	dimCount := make(map[string]int)
	for _, d := range dims {
		dimCount[d.URL]++
	}

	joined := semisort.JoinEqStr(evs, dims, eventURL, eventURL,
		func(e, d event) [2]int { return [2]int{e.Seq, d.Seq} })
	wantRows := 0
	for _, e := range evs {
		wantRows += dimCount[e.URL]
	}
	if len(joined) != wantRows {
		t.Fatalf("JoinEqStr: %d rows, want %d", len(joined), wantRows)
	}
	// Every emitted pair must actually match on key.
	bySeq := make(map[int]string, len(dims))
	for _, d := range dims {
		bySeq[d.Seq] = d.URL
	}
	for _, p := range joined {
		if evs[p[0]].URL != bySeq[p[1]] {
			t.Fatalf("JoinEqStr emitted non-matching pair %v", p)
		}
	}

	semi := semisort.SemiJoinEqStr(evs, dims, eventURL, eventURL)
	wantSemi := 0
	for _, e := range evs {
		if dimCount[e.URL] > 0 {
			wantSemi++
		}
	}
	if len(semi) != wantSemi {
		t.Fatalf("SemiJoinEqStr: %d rows, want %d", len(semi), wantSemi)
	}
	for _, e := range semi {
		if dimCount[e.URL] == 0 {
			t.Fatalf("SemiJoinEqStr kept %q, not in b", e.URL)
		}
	}
}

func TestKeyedCompositeAndBytes(t *testing.T) {
	// The ...Keyed forms: composite (two-field) keys materialized append-style
	// must behave exactly like the equivalent concatenated-string key.
	type row struct {
		Tenant uint32
		Name   string
		Seq    int
	}
	rng := rand.New(rand.NewSource(13))
	const n = 50000
	rows := make([]row, n)
	for i := range rows {
		rows[i] = row{Tenant: uint32(rng.Intn(7)), Name: fmt.Sprintf("n%d", rng.Intn(800)), Seq: i}
	}
	appendKey := semisort.AppendKey[row](func(dst []byte, r row) []byte {
		dst = binary.LittleEndian.AppendUint32(dst, r.Tenant)
		return append(dst, r.Name...)
	})
	strKey := func(r row) string {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], r.Tenant)
		return string(b[:]) + r.Name
	}

	first := make(map[string]int)
	for _, r := range rows {
		if _, ok := first[strKey(r)]; !ok {
			first[strKey(r)] = r.Seq
		}
	}
	deduped := semisort.DedupKeyed(rows, appendKey)
	if len(deduped) != len(first) {
		t.Fatalf("DedupKeyed: %d records, want %d", len(deduped), len(first))
	}
	for _, r := range deduped {
		if first[strKey(r)] != r.Seq {
			t.Fatalf("DedupKeyed kept Seq %d, want first %d", r.Seq, first[strKey(r)])
		}
	}
	if got := semisort.CountDistinctKeyed(rows, appendKey); got != int64(len(first)) {
		t.Fatalf("CountDistinctKeyed: %d, want %d", got, len(first))
	}

	sorted := append([]row(nil), rows...)
	semisort.SortEqKeyed(sorted, appendKey)
	seen := make(map[string]bool)
	for i := 0; i < len(sorted); {
		k := strKey(sorted[i])
		if seen[k] {
			t.Fatalf("SortEqKeyed: composite key %q in two runs", k)
		}
		seen[k] = true
		for i < len(sorted) && strKey(sorted[i]) == k {
			i++
		}
	}

	joined := semisort.JoinEqKeyed(rows[:1000], rows[:100], appendKey, appendKey,
		func(a, b row) int { return a.Seq })
	want := 0
	inB := make(map[string]int)
	for _, r := range rows[:100] {
		inB[strKey(r)]++
	}
	for _, r := range rows[:1000] {
		want += inB[strKey(r)]
	}
	if len(joined) != want {
		t.Fatalf("JoinEqKeyed: %d rows, want %d", len(joined), want)
	}
}

func TestStrKeyedEdgeShapes(t *testing.T) {
	// Degenerate inputs: empty relation, all-empty-string keys, all one key.
	if out := semisort.DedupStr(nil, eventURL); len(out) != 0 {
		t.Fatalf("DedupStr(nil): %d records", len(out))
	}
	if got := semisort.CountDistinctStr([]event{}, eventURL); got != 0 {
		t.Fatalf("CountDistinctStr(empty): %d", got)
	}
	allEmpty := make([]event, 5000)
	for i := range allEmpty {
		allEmpty[i] = event{URL: "", Seq: i}
	}
	if got := semisort.CountDistinctStr(allEmpty, eventURL); got != 1 {
		t.Fatalf("CountDistinctStr(all empty keys): %d, want 1", got)
	}
	d := semisort.DedupStr(allEmpty, eventURL)
	if len(d) != 1 || d[0].Seq != 0 {
		t.Fatalf("DedupStr(all empty keys): %+v", d)
	}
	one := make([]event, 30000)
	for i := range one {
		one[i] = event{URL: "only", Seq: i}
	}
	semisort.SortEqStr(one, eventURL)
	for i, e := range one {
		if e.URL != "only" {
			t.Fatalf("SortEqStr(all dup) corrupted record %d: %+v", i, e)
		}
	}
	top := semisort.TopKStr(one, 4, eventURL)
	if len(top) != 1 || top[0].Key != "only" || top[0].Count != int64(len(one)) {
		t.Fatalf("TopKStr(all dup): %+v", top)
	}
}

func TestStrKeyedDeterministicAcrossWorkers(t *testing.T) {
	// Output bytes — including full record order from SortEq and Dedup — must
	// not depend on the worker count.
	rng := rand.New(rand.NewSource(14))
	evs := strCorpus(rng, 80000, 600)
	dims := strCorpus(rng, 500, 900)

	type snapshot struct {
		sorted  []event
		deduped []event
		joined  []int
		top     []semisort.KeyCount[string]
	}
	run := func(workers int) snapshot {
		rt := semisort.NewRuntime(workers)
		defer rt.Close()
		opt := semisort.WithRuntime(rt)
		s := append([]event(nil), evs...)
		semisort.SortEqStr(s, eventURL, opt)
		return snapshot{
			sorted:  s,
			deduped: semisort.DedupStr(evs, eventURL, opt),
			joined: semisort.JoinEqStr(evs, dims, eventURL, eventURL,
				func(e, d event) int { return e.Seq*1000003 + d.Seq }, opt),
			top: semisort.TopKStr(evs, 8, eventURL, opt),
		}
	}
	want := run(1)
	for _, w := range []int{3, 7} {
		got := run(w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("string-keyed outputs differ between 1 and %d workers", w)
		}
	}
}

func TestStrKeyTooLongPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("oversize key did not panic")
		}
		// The build runs under the runtime's panic containment, so the value
		// may arrive wrapped; the message must still name the limit.
		if !strings.Contains(fmt.Sprint(r), "key longer than") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	huge := []event{{URL: strings.Repeat("a", semisort.MaxStrKeyLen+1)}}
	semisort.CountDistinctStr(huge, eventURL)
}
