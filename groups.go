package semisort

import (
	"repro/internal/core"
	"repro/internal/parallel"
)

// Group is one contiguous run of equal-key records after a semisort:
// a[Lo:Hi] all share the same key.
type Group struct {
	Lo, Hi int
}

// GroupsEq semisorts a with SortEq and returns the boundaries of the
// resulting key groups, in output order. It is the convenience most
// applications want: "give me each key's records as a slice".
//
//	for _, g := range semisort.GroupsEq(edges, key, hash, eq) {
//	    neighbors := edges[g.Lo:g.Hi]
//	}
func GroupsEq[R, K any](a []R, key func(R) K, hash func(K) uint64, eq func(K, K) bool, opts ...Option) []Group {
	out, err := GroupsEqE(a, key, hash, eq, opts...)
	mustCall(err)
	return out
}

// GroupsEqE is GroupsEq with an error return for cancellable calls; see
// SortEqE for the contract. The sort and the boundary scan run as one
// guarded call: cancellation anywhere returns ctx.Err() with a left in a
// valid but unspecified permutation and no groups.
func GroupsEqE[R, K any](a []R, key func(R) K, hash func(K) uint64, eq func(K, K) bool, opts ...Option) (out []Group, err error) {
	// The options are resolved once: the config built here drives both the
	// sort and the boundary scan (core.SortEq applies the defaults).
	cfg := buildConfig(opts)
	done, aerr := enterCall(&cfg)
	if aerr != nil {
		return nil, aerr
	}
	defer done(&err)
	core.SortEq(a, key, hash, eq, cfg)
	cfg.CheckCancel()
	return boundaries(parallel.Or(cfg.Runtime), a, key, eq), nil
}

// GroupsLess is GroupsEq using SortLess (semisort<).
func GroupsLess[R, K any](a []R, key func(R) K, hash func(K) uint64, less func(K, K) bool, opts ...Option) []Group {
	out, err := GroupsLessE(a, key, hash, less, opts...)
	mustCall(err)
	return out
}

// GroupsLessE is GroupsLess with an error return for cancellable calls;
// see GroupsEqE for the contract.
func GroupsLessE[R, K any](a []R, key func(R) K, hash func(K) uint64, less func(K, K) bool, opts ...Option) (out []Group, err error) {
	cfg := buildConfig(opts)
	done, aerr := enterCall(&cfg)
	if aerr != nil {
		return nil, aerr
	}
	defer done(&err)
	core.SortLess(a, key, hash, less, cfg)
	cfg.CheckCancel()
	eq := func(x, y K) bool { return !less(x, y) && !less(y, x) }
	return boundaries(parallel.Or(cfg.Runtime), a, key, eq), nil
}

// boundaries locates the group starts of an already-semisorted array in
// parallel (a head is any position whose key differs from its predecessor),
// packing the head indices directly — no O(n) index staging array. It runs
// on the same runtime as the sort so a WithRuntime caller keeps its pool
// isolation for the whole call.
func boundaries[R, K any](rt *parallel.Runtime, a []R, key func(R) K, eq func(K, K) bool) []Group {
	n := len(a)
	if n == 0 {
		return nil
	}
	heads := parallel.PackIndexIn(rt, n, func(i int) bool {
		return i == 0 || !eq(key(a[i-1]), key(a[i]))
	})
	groups := make([]Group, len(heads))
	rt.For(len(heads), 1024, func(g int) {
		hi := n
		if g+1 < len(heads) {
			hi = heads[g+1]
		}
		groups[g] = Group{Lo: heads[g], Hi: hi}
	})
	return groups
}
